"""Open-loop load generator for the multi-tenant estimation server.

Three phases against an in-process :class:`repro.server.ThreadedServer`
serving the ``example`` artifact (the serving tier's overhead — wire
protocol, admission, coalescing — is what's measured; estimator cost is
covered by the engine/service benches):

1. **Identity sweep** — every shape in the pool is served once per
   estimator (all nine §4.2 heuristics + MOLP) and must be bit-identical
   to in-process ``EstimationSession.estimate_batch`` on the same
   artifact.  This is an acceptance gate, asserted on every run.
2. **Coalesce probe** — the tenant is hot-reloaded (fresh caches) and N
   concurrent identical requests race onto a cold shape: the session's
   skeleton-cache counters must show exactly **one** CEG build, with the
   other N-1 callers either coalesced in flight or served from the LRU.
3. **Open-loop load** — requests arrive on a fixed schedule (arrival
   times independent of completions, so client-side queueing counts
   against latency like a real overloaded service), shapes drawn from a
   Zipf-skewed popularity distribution with fresh variable names per
   arrival, estimators from a weighted mix.  Every response is verified
   bit-identical; throughput and latency percentiles land in
   ``BENCH_server.json``.

Runs standalone: ``python benchmarks/bench_server_load.py [--quick]
[--json PATH]``.
"""

from __future__ import annotations

import argparse
import json
import queue
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.presets import running_example_graph  # noqa: E402
from repro.query.parser import parse_pattern  # noqa: E402
from repro.server import (  # noqa: E402
    EstimationClient,
    ServerConfig,
    StoreRegistry,
    ThreadedServer,
)
from repro.stats import (  # noqa: E402
    StatisticsStore,
    StatsBuildConfig,
    build_statistics,
)

ALL_SPECS = [
    f"{hop}-{agg}"
    for hop in ("max-hop", "min-hop", "all-hops")
    for agg in ("max", "min", "avg")
] + ["MOLP"]

#: (weight, estimator) mix for the load phase: mostly the paper's
#: recommended point, some pessimistic bounds, a slower heuristic tail.
ESTIMATOR_MIX = [(0.7, "max-hop-max"), (0.2, "MOLP"), (0.1, "all-hops-avg")]

SHAPE_TEMPLATES = [
    "{0} -[A]-> {1}",
    "{0} -[B]-> {1}",
    "{0} -[C]-> {1}",
    "{0} -[D]-> {1}",
    "{0} -[E]-> {1}",
    "{0} -[A]-> {1} -[B]-> {2}",
    "{0} -[B]-> {1} -[C]-> {2}",
    "{0} -[B]-> {1} -[D]-> {2}",
    "{0} -[B]-> {1} -[E]-> {2}",
    "{0} -[A]-> {1} -[B]-> {2} -[C]-> {3}",
    "{0} -[A]-> {1} -[B]-> {2} -[D]-> {3}",
    "{0} -[A]-> {1} -[B]-> {2} -[E]-> {3}",
    "{0} -[B]-> {1}, {0} -[B]-> {2}",
    "{0} -[A]-> {1}, {2} -[A]-> {1}",
    "{0} -[C]-> {1}, {0} -[D]-> {2}",
    "{0} -[A]-> {1} -[B]-> {2}, {1} -[B]-> {3}",
]


def shape_text(template: str, salt: int) -> str:
    """Instantiate a template with salted variable names (same shape)."""
    return template.format(
        f"u{salt}", f"v{salt}", f"w{salt}", f"x{salt}"
    )


def zipf_ranks(rng: random.Random, count: int, size: int, s: float = 1.1):
    """``count`` Zipf(s)-distributed ranks in [0, size)."""
    weights = [1.0 / (rank + 1) ** s for rank in range(size)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    ranks = []
    for _ in range(count):
        point = rng.random()
        for rank, bound in enumerate(cumulative):
            if point <= bound:
                ranks.append(rank)
                break
        else:  # pragma: no cover - float edge
            ranks.append(size - 1)
    return ranks


def pick_estimator(rng: random.Random) -> str:
    point = rng.random()
    acc = 0.0
    for weight, name in ESTIMATOR_MIX:
        acc += weight
        if point <= acc:
            return name
    return ESTIMATOR_MIX[-1][1]


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        int(fraction * len(sorted_values)), len(sorted_values) - 1
    )
    return sorted_values[index]


def build_artifacts(base: Path) -> tuple[Path, Path]:
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    return store.save(base / "v1"), store.save(base / "v2")


def expected_estimates(artifact: Path) -> dict[str, dict[str, float | None]]:
    """In-process reference values per (template, spec) — the truth."""
    session = StatisticsStore.load(artifact).session()
    patterns = [
        parse_pattern(shape_text(template, 0)) for template in SHAPE_TEMPLATES
    ]
    batch = session.estimate_batch(patterns, specs=ALL_SPECS, max_workers=1)
    return {
        template: {
            spec: batch.item(index, spec).estimate for spec in ALL_SPECS
        }
        for index, template in enumerate(SHAPE_TEMPLATES)
    }


def identity_sweep(host, port, expected) -> int:
    """Phase 1: every (shape, spec) served once, asserted bit-identical."""
    checked = 0
    with EstimationClient(host, port) as client:
        for template, per_spec in expected.items():
            result = client.estimate(
                "example", shape_text(template, 1), ALL_SPECS
            )
            for spec, value in per_spec.items():
                if value is None:
                    assert spec in result["errors"], (template, spec)
                else:
                    served = result["estimates"][spec]
                    assert served == value, (
                        f"served {served!r} != in-process {value!r} "
                        f"for {template!r} under {spec}"
                    )
                checked += 1
    return checked


def coalesce_probe(threaded: ThreadedServer, v2: Path, fan_out: int) -> dict:
    """Phase 2: N concurrent identical cold requests -> one CEG build."""
    with EstimationClient(threaded.host, threaded.port) as client:
        client.reload("example", str(v2))  # fresh session, cold caches
    server = threaded.server
    before = server.stats_result()
    cache_before = before["tenants"]["example"]["cache"]
    barrier = threading.Barrier(fan_out)
    results = []
    results_lock = threading.Lock()

    def fire():
        with EstimationClient(threaded.host, threaded.port) as client:
            barrier.wait(10)
            result = client.estimate(
                "example",
                shape_text(SHAPE_TEMPLATES[-1], 9),
                ["all-hops-avg"],
            )
            with results_lock:
                results.append(result["estimates"]["all-hops-avg"])

    threads = [threading.Thread(target=fire) for _ in range(fan_out)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    after = server.stats_result()
    cache_after = after["tenants"]["example"]["cache"]
    skeleton_builds = (
        cache_after["skeletons"]["misses"] - cache_before["skeletons"]["misses"]
    )
    followers = (
        after["coalescer"]["followers"] - before["coalescer"]["followers"]
    )
    lru_hits = (
        cache_after["estimates"]["hits"] - cache_before["estimates"]["hits"]
    )
    assert len(results) == fan_out and len(set(results)) == 1, (
        "every concurrent caller must receive the identical estimate"
    )
    assert skeleton_builds == 1, (
        f"{fan_out} concurrent identical cold requests must collapse into "
        f"one CEG build; session counters saw {skeleton_builds}"
    )
    assert followers + lru_hits == fan_out - 1
    return {
        "fan_out": fan_out,
        "skeleton_builds": skeleton_builds,
        "coalesced_followers": followers,
        "estimate_lru_hits": lru_hits,
    }


def open_loop_load(
    host: str,
    port: int,
    expected: dict,
    requests: int,
    rate: float,
    workers: int,
    seed: int,
) -> dict:
    """Phase 3: fixed arrival schedule, Zipf shape mix, verified responses."""
    rng = random.Random(seed)
    ranks = zipf_ranks(rng, requests, len(SHAPE_TEMPLATES))
    schedule = [
        (
            arrival / rate,
            SHAPE_TEMPLATES[rank],
            pick_estimator(rng),
            arrival,
        )
        for arrival, rank in enumerate(ranks)
    ]
    work: queue.Queue = queue.Queue()
    for item in schedule:
        work.put(item)
    latencies: list[float] = []
    mismatches: list[str] = []
    errors: list[str] = []
    lock = threading.Lock()
    start_gate = threading.Event()
    epoch: list[float] = []

    def worker():
        with EstimationClient(host, port) as client:
            start_gate.wait(10)
            while True:
                try:
                    offset, template, estimator, salt = work.get_nowait()
                except queue.Empty:
                    return
                now = time.perf_counter()
                wake = epoch[0] + offset
                if wake > now:
                    time.sleep(wake - now)
                try:
                    result = client.estimate(
                        "example",
                        shape_text(template, salt),
                        [estimator],
                    )
                except Exception as error:
                    with lock:
                        errors.append(f"{template!r}: {error}")
                    continue
                done = time.perf_counter()
                value = result["estimates"].get(estimator)
                reference = expected[template][estimator]
                if value != reference:
                    with lock:
                        mismatches.append(
                            f"{template!r} {estimator}: {value!r} != "
                            f"{reference!r}"
                        )
                with lock:
                    # Open-loop latency: measured from the *scheduled*
                    # arrival, so backlog waits count against us.
                    latencies.append(done - (epoch[0] + offset))

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    epoch.append(time.perf_counter())
    start_gate.set()
    for thread in threads:
        thread.join(300)
    elapsed = time.perf_counter() - epoch[0]
    assert not errors, f"load phase hit request errors: {errors[:3]}"
    assert not mismatches, (
        f"served estimates diverged from in-process: {mismatches[:3]}"
    )
    assert len(latencies) == requests
    latencies.sort()
    return {
        "requests": requests,
        "target_rate_rps": rate,
        "workers": workers,
        "duration_seconds": elapsed,
        "throughput_rps": requests / elapsed,
        "latency_ms": {
            "p50": percentile(latencies, 0.50) * 1000,
            "p90": percentile(latencies, 0.90) * 1000,
            "p99": percentile(latencies, 0.99) * 1000,
            "max": latencies[-1] * 1000,
        },
        "zipf_s": 1.1,
        "estimator_mix": {name: weight for weight, name in ESTIMATOR_MIX},
    }


def run(quick: bool = False) -> dict:
    requests = 400 if quick else 4000
    rate = 400.0 if quick else 800.0
    workers = 8 if quick else 16
    fan_out = 8 if quick else 16
    with tempfile.TemporaryDirectory(prefix="bench-server-") as tmp:
        v1, v2 = build_artifacts(Path(tmp))
        expected = expected_estimates(v1)
        registry = StoreRegistry()
        registry.load("example", v1)
        config = ServerConfig(
            port=0, max_inflight=8, queue_limit=max(requests, 128)
        )
        with ThreadedServer(registry, config) as threaded:
            host, port = threaded.host, threaded.port
            cells = identity_sweep(host, port, expected)
            coalesce = coalesce_probe(threaded, v2, fan_out)
            load = open_loop_load(
                host, port, expected, requests, rate, workers, seed=7
            )
            stats = threaded.server.stats_result()
    ok = (
        coalesce["skeleton_builds"] == 1
        and stats["admission"]["shed_total"] == 0
        and load["throughput_rps"] > 0
    )
    return {
        "benchmark": "server_load",
        "mode": "quick" if quick else "full",
        "identity_cells_verified": cells,
        "all_bit_identical": True,  # asserted above, every run
        "coalesce": coalesce,
        "load": load,
        "admission": stats["admission"],
        "coalescer_totals": stats["coalescer"],
        "ok": ok,
    }


def render(report: dict) -> str:
    load = report["load"]
    latency = load["latency_ms"]
    coalesce = report["coalesce"]
    return "\n".join(
        [
            f"Server load (open loop, mode={report['mode']})",
            f"  identity sweep       : {report['identity_cells_verified']} "
            "(shape, estimator) cells bit-identical to in-process",
            f"  coalesce probe       : {coalesce['fan_out']} concurrent "
            f"identical cold requests -> {coalesce['skeleton_builds']} CEG "
            f"build ({coalesce['coalesced_followers']} coalesced, "
            f"{coalesce['estimate_lru_hits']} LRU hits)",
            f"  load                 : {load['requests']} requests @ "
            f"{load['target_rate_rps']:.0f}/s target, "
            f"{load['throughput_rps']:.1f}/s achieved",
            f"  latency (open loop)  : p50 {latency['p50']:.2f} ms, "
            f"p90 {latency['p90']:.2f} ms, p99 {latency['p99']:.2f} ms, "
            f"max {latency['max']:.2f} ms",
            f"  shed / deadline      : "
            f"{report['admission']['shed_total']} / "
            f"{report['admission']['deadline_exceeded_total']}",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    if not report["ok"]:
        print("FAIL: server load benchmark gates not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
