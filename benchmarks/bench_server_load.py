"""Open-loop load generator for the multi-tenant estimation server.

Three phases against an in-process :class:`repro.server.ThreadedServer`
serving the ``example`` artifact (the serving tier's overhead — wire
protocol, admission, coalescing — is what's measured; estimator cost is
covered by the engine/service benches):

1. **Identity sweep** — every shape in the pool is served once per
   estimator (all nine §4.2 heuristics + MOLP) and must be bit-identical
   to in-process ``EstimationSession.estimate_batch`` on the same
   artifact.  This is an acceptance gate, asserted on every run.
2. **Coalesce probe** — the tenant is hot-reloaded (fresh caches) and N
   concurrent identical requests race onto a cold shape: the session's
   skeleton-cache counters must show exactly **one** CEG build, with the
   other N-1 callers either coalesced in flight or served from the LRU.
3. **Open-loop load** — requests arrive on a fixed schedule (arrival
   times independent of completions, so client-side queueing counts
   against latency like a real overloaded service), shapes drawn from a
   Zipf-skewed popularity distribution with fresh variable names per
   arrival, estimators from a weighted mix.  Every response is verified
   bit-identical; throughput and latency percentiles land in
   ``BENCH_server.json``.

Runs standalone: ``python benchmarks/bench_server_load.py [--quick]
[--json PATH]``.

**Fleet mode** (``--workers N``) re-runs the acceptance surface against
a real ``repro serve --workers N`` subprocess fleet: the bit-identity
sweep is asserted against *every worker's* direct port, the open-loop
phase routes tenant-affine traffic through :class:`FleetClient` at 4×
the committed single-process target (`BENCH_server.json`), and a
``/proc/<pid>/smaps_rollup`` probe verifies the copy-on-write artifact
sharing: per-worker unique RSS for N workers must stay ≤ 1.5× a single
worker's.  Two phases exercise the shared-memory statistics plane:

* **Reload storm** — while open-loop traffic runs, every tenant is
  hot-reloaded onto fresh artifact generations.  The fleet-aggregate
  ``disk_parses`` counter must advance by exactly **one per
  generation** (the first worker parses and publishes the image, its
  peers attach the shared pages), p99 during the storm stays bounded,
  and every response remains bit-identical across the swaps.
* **Post-reload USS probe** — per-worker unique memory after a reload
  fan-out at N workers must stay ≤ 1.2× the single-worker figure:
  a reload that re-parsed privately per worker would multiply it by N.

Results land in ``BENCH_fleet.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.datasets.presets import running_example_graph  # noqa: E402
from repro.query.parser import parse_pattern  # noqa: E402
from repro.server import (  # noqa: E402
    EstimationClient,
    FleetClient,
    ServerConfig,
    StoreRegistry,
    ThreadedServer,
    wait_until_ready,
)
from repro.stats import (  # noqa: E402
    StatisticsStore,
    StatsBuildConfig,
    build_statistics,
)

ALL_SPECS = [
    f"{hop}-{agg}"
    for hop in ("max-hop", "min-hop", "all-hops")
    for agg in ("max", "min", "avg")
] + ["MOLP"]

#: (weight, estimator) mix for the load phase: mostly the paper's
#: recommended point, some pessimistic bounds, a slower heuristic tail.
ESTIMATOR_MIX = [(0.7, "max-hop-max"), (0.2, "MOLP"), (0.1, "all-hops-avg")]

SHAPE_TEMPLATES = [
    "{0} -[A]-> {1}",
    "{0} -[B]-> {1}",
    "{0} -[C]-> {1}",
    "{0} -[D]-> {1}",
    "{0} -[E]-> {1}",
    "{0} -[A]-> {1} -[B]-> {2}",
    "{0} -[B]-> {1} -[C]-> {2}",
    "{0} -[B]-> {1} -[D]-> {2}",
    "{0} -[B]-> {1} -[E]-> {2}",
    "{0} -[A]-> {1} -[B]-> {2} -[C]-> {3}",
    "{0} -[A]-> {1} -[B]-> {2} -[D]-> {3}",
    "{0} -[A]-> {1} -[B]-> {2} -[E]-> {3}",
    "{0} -[B]-> {1}, {0} -[B]-> {2}",
    "{0} -[A]-> {1}, {2} -[A]-> {1}",
    "{0} -[C]-> {1}, {0} -[D]-> {2}",
    "{0} -[A]-> {1} -[B]-> {2}, {1} -[B]-> {3}",
]


def shape_text(template: str, salt: int) -> str:
    """Instantiate a template with salted variable names (same shape)."""
    return template.format(
        f"u{salt}", f"v{salt}", f"w{salt}", f"x{salt}"
    )


def zipf_ranks(rng: random.Random, count: int, size: int, s: float = 1.1):
    """``count`` Zipf(s)-distributed ranks in [0, size)."""
    weights = [1.0 / (rank + 1) ** s for rank in range(size)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    ranks = []
    for _ in range(count):
        point = rng.random()
        for rank, bound in enumerate(cumulative):
            if point <= bound:
                ranks.append(rank)
                break
        else:  # pragma: no cover - float edge
            ranks.append(size - 1)
    return ranks


def pick_estimator(rng: random.Random) -> str:
    point = rng.random()
    acc = 0.0
    for weight, name in ESTIMATOR_MIX:
        acc += weight
        if point <= acc:
            return name
    return ESTIMATOR_MIX[-1][1]


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        int(fraction * len(sorted_values)), len(sorted_values) - 1
    )
    return sorted_values[index]


def build_artifacts(base: Path) -> tuple[Path, Path]:
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    return store.save(base / "v1"), store.save(base / "v2")


def expected_estimates(artifact: Path) -> dict[str, dict[str, float | None]]:
    """In-process reference values per (template, spec) — the truth."""
    session = StatisticsStore.load(artifact).session()
    patterns = [
        parse_pattern(shape_text(template, 0)) for template in SHAPE_TEMPLATES
    ]
    batch = session.estimate_batch(patterns, specs=ALL_SPECS, max_workers=1)
    return {
        template: {
            spec: batch.item(index, spec).estimate for spec in ALL_SPECS
        }
        for index, template in enumerate(SHAPE_TEMPLATES)
    }


def identity_sweep(host, port, expected) -> int:
    """Phase 1: every (shape, spec) served once, asserted bit-identical."""
    checked = 0
    with EstimationClient(host, port) as client:
        for template, per_spec in expected.items():
            result = client.estimate(
                "example", shape_text(template, 1), ALL_SPECS
            )
            for spec, value in per_spec.items():
                if value is None:
                    assert spec in result["errors"], (template, spec)
                else:
                    served = result["estimates"][spec]
                    assert served == value, (
                        f"served {served!r} != in-process {value!r} "
                        f"for {template!r} under {spec}"
                    )
                checked += 1
    return checked


def coalesce_probe(threaded: ThreadedServer, v2: Path, fan_out: int) -> dict:
    """Phase 2: N concurrent identical cold requests -> one CEG build."""
    with EstimationClient(threaded.host, threaded.port) as client:
        client.reload("example", str(v2))  # fresh session, cold caches
    server = threaded.server
    before = server.stats_result()
    cache_before = before["tenants"]["example"]["cache"]
    barrier = threading.Barrier(fan_out)
    results = []
    results_lock = threading.Lock()

    def fire():
        with EstimationClient(threaded.host, threaded.port) as client:
            barrier.wait(10)
            result = client.estimate(
                "example",
                shape_text(SHAPE_TEMPLATES[-1], 9),
                ["all-hops-avg"],
            )
            with results_lock:
                results.append(result["estimates"]["all-hops-avg"])

    threads = [threading.Thread(target=fire) for _ in range(fan_out)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    after = server.stats_result()
    cache_after = after["tenants"]["example"]["cache"]
    skeleton_builds = (
        cache_after["skeletons"]["misses"] - cache_before["skeletons"]["misses"]
    )
    followers = (
        after["coalescer"]["followers"] - before["coalescer"]["followers"]
    )
    lru_hits = (
        cache_after["estimates"]["hits"] - cache_before["estimates"]["hits"]
    )
    assert len(results) == fan_out and len(set(results)) == 1, (
        "every concurrent caller must receive the identical estimate"
    )
    assert skeleton_builds == 1, (
        f"{fan_out} concurrent identical cold requests must collapse into "
        f"one CEG build; session counters saw {skeleton_builds}"
    )
    assert followers + lru_hits == fan_out - 1
    return {
        "fan_out": fan_out,
        "skeleton_builds": skeleton_builds,
        "coalesced_followers": followers,
        "estimate_lru_hits": lru_hits,
    }


def open_loop_load(
    host: str,
    port: int,
    expected: dict,
    requests: int,
    rate: float,
    workers: int,
    seed: int,
    tenants: tuple[str, ...] = ("example",),
    make_client=None,
) -> dict:
    """Phase 3: fixed arrival schedule, Zipf shape mix, verified responses.

    ``tenants`` round-robins arrivals across tenant names (the fleet
    mode's scale-out axis — affinity routing spreads them over
    workers); ``make_client`` swaps the per-thread client factory
    (:class:`FleetClient` in fleet mode).
    """
    rng = random.Random(seed)
    ranks = zipf_ranks(rng, requests, len(SHAPE_TEMPLATES))
    schedule = [
        (
            arrival / rate,
            SHAPE_TEMPLATES[rank],
            pick_estimator(rng),
            arrival,
        )
        for arrival, rank in enumerate(ranks)
    ]
    work: queue.Queue = queue.Queue()
    for item in schedule:
        work.put(item)
    if make_client is None:
        def make_client():
            return EstimationClient(host, port)
    latencies: list[float] = []
    mismatches: list[str] = []
    errors: list[str] = []
    lock = threading.Lock()
    start_gate = threading.Event()
    epoch: list[float] = []

    def worker():
        with make_client() as client:
            start_gate.wait(10)
            while True:
                try:
                    offset, template, estimator, salt = work.get_nowait()
                except queue.Empty:
                    return
                now = time.perf_counter()
                wake = epoch[0] + offset
                if wake > now:
                    time.sleep(wake - now)
                try:
                    result = client.estimate(
                        tenants[salt % len(tenants)],
                        shape_text(template, salt),
                        [estimator],
                    )
                except Exception as error:
                    with lock:
                        errors.append(f"{template!r}: {error}")
                    continue
                done = time.perf_counter()
                value = result["estimates"].get(estimator)
                reference = expected[template][estimator]
                if value != reference:
                    with lock:
                        mismatches.append(
                            f"{template!r} {estimator}: {value!r} != "
                            f"{reference!r}"
                        )
                with lock:
                    # Open-loop latency: measured from the *scheduled*
                    # arrival, so backlog waits count against us.
                    latencies.append(done - (epoch[0] + offset))

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    epoch.append(time.perf_counter())
    start_gate.set()
    for thread in threads:
        thread.join(300)
    elapsed = time.perf_counter() - epoch[0]
    assert not errors, f"load phase hit request errors: {errors[:3]}"
    assert not mismatches, (
        f"served estimates diverged from in-process: {mismatches[:3]}"
    )
    assert len(latencies) == requests
    latencies.sort()
    return {
        "requests": requests,
        "target_rate_rps": rate,
        "workers": workers,
        "duration_seconds": elapsed,
        "throughput_rps": requests / elapsed,
        "latency_ms": {
            "p50": percentile(latencies, 0.50) * 1000,
            "p90": percentile(latencies, 0.90) * 1000,
            "p99": percentile(latencies, 0.99) * 1000,
            "max": latencies[-1] * 1000,
        },
        "zipf_s": 1.1,
        "estimator_mix": {name: weight for weight, name in ESTIMATOR_MIX},
    }


def run(quick: bool = False) -> dict:
    requests = 400 if quick else 4000
    rate = 400.0 if quick else 800.0
    workers = 8 if quick else 16
    fan_out = 8 if quick else 16
    with tempfile.TemporaryDirectory(prefix="bench-server-") as tmp:
        v1, v2 = build_artifacts(Path(tmp))
        expected = expected_estimates(v1)
        registry = StoreRegistry()
        registry.load("example", v1)
        config = ServerConfig(
            port=0, max_inflight=8, queue_limit=max(requests, 128)
        )
        with ThreadedServer(registry, config) as threaded:
            host, port = threaded.host, threaded.port
            cells = identity_sweep(host, port, expected)
            coalesce = coalesce_probe(threaded, v2, fan_out)
            load = open_loop_load(
                host, port, expected, requests, rate, workers, seed=7
            )
            stats = threaded.server.stats_result()
    ok = (
        coalesce["skeleton_builds"] == 1
        and stats["admission"]["shed_total"] == 0
        and load["throughput_rps"] > 0
    )
    return {
        "benchmark": "server_load",
        "mode": "quick" if quick else "full",
        "identity_cells_verified": cells,
        "all_bit_identical": True,  # asserted above, every run
        "coalesce": coalesce,
        "load": load,
        "admission": stats["admission"],
        "coalescer_totals": stats["coalescer"],
        "ok": ok,
    }


# ----------------------------------------------------------------------
# Fleet mode (--workers N): subprocess fleet, COW memory, 4x target
# ----------------------------------------------------------------------

#: Tenants registered in fleet mode (all serving the same artifact, so
#: one in-process reference covers them all).  Multiple names matter:
#: the consistent-hash router spreads *tenants*, not connections, so a
#: single tenant would pin the whole load on one worker.
FLEET_TENANTS = ("example", "tenant-b", "tenant-c", "tenant-d")


class FleetUnderTest:
    """A ``repro serve --workers N`` subprocess and its ready map."""

    def __init__(
        self,
        artifact: Path,
        workers: int,
        queue_limit: int = 128,
    ):
        command = [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--workers", str(workers),
            "--queue-limit", str(queue_limit),
        ]
        for tenant in FLEET_TENANTS:
            command += ["--tenant", f"{tenant}={artifact}"]
        self.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": str(SRC)},
            text=True,
        )
        ready_line = self.proc.stdout.readline()
        if not ready_line:
            raise RuntimeError(
                f"fleet failed to start: {self.proc.stderr.read()}"
            )
        self.ready = json.loads(ready_line)
        self.host = self.ready["host"]
        self.port = self.ready["port"]
        wait_until_ready(self.host, self.port, timeout=30.0)

    def shutdown(self) -> tuple[int, str]:
        """Drain the fleet via the shutdown verb; returns (rc, stderr)."""
        with FleetClient(self.host, self.port) as client:
            client.shutdown()
        self.proc.wait(timeout=60)
        stderr = self.proc.stderr.read()
        self.proc.stdout.close()
        self.proc.stderr.close()
        return self.proc.returncode, stderr

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def memory_of(pid: int) -> dict[str, float]:
    """RSS/PSS/USS of one process in kB (Linux ``smaps_rollup``)."""
    fields = {}
    for line in Path(f"/proc/{pid}/smaps_rollup").read_text().splitlines():
        parts = line.split()
        if len(parts) >= 2 and parts[0].rstrip(":") in (
            "Rss", "Pss", "Private_Clean", "Private_Dirty"
        ):
            fields[parts[0].rstrip(":")] = float(parts[1])
    return {
        "rss_kb": fields.get("Rss", 0.0),
        "pss_kb": fields.get("Pss", 0.0),
        "uss_kb": fields.get("Private_Clean", 0.0)
        + fields.get("Private_Dirty", 0.0),
    }


def fleet_identity_sweep(fleet: FleetUnderTest, expected: dict) -> int:
    """The bit-identity sweep, against **every worker's** direct port."""
    checked = 0
    for worker in fleet.ready["workers"]:
        checked += identity_sweep(
            fleet.host, worker["direct_port"], expected
        )
    return checked


def fleet_memory_probe(
    artifact: Path, workers: int, reload_to: Path | None = None
) -> dict:
    """Measure per-worker memory with every worker warmed.

    Loaded-once-shared-copy-on-write is the claim: the supervisor loads
    the registry pre-fork, so N workers' artifact pages are one
    physical copy.  USS (private pages only) is the honest per-worker
    marginal cost; PSS totals show the fleet-wide footprint with shared
    pages divided fairly.

    With ``reload_to`` the probe measures the *post-reload* footprint:
    every tenant is hot-reloaded onto that artifact copy first, so the
    fork-time pages no longer cover the served generation.  Without the
    shared plane each worker would hold a private re-parse and USS
    would scale with N; with it the reload lands in one shared image.
    """
    fleet = FleetUnderTest(artifact, workers)
    try:
        if reload_to is not None:
            with FleetClient(fleet.host, fleet.port) as client:
                for tenant in FLEET_TENANTS:
                    client.reload(tenant, path=str(reload_to))
        for worker in fleet.ready["workers"]:
            with EstimationClient(
                fleet.host, worker["direct_port"]
            ) as client:
                for tenant in FLEET_TENANTS:
                    for template in SHAPE_TEMPLATES[:4]:
                        client.estimate(
                            tenant, shape_text(template, 3), ["max-hop-max"]
                        )
        per_worker = {
            str(worker["index"]): memory_of(worker["pid"])
            for worker in fleet.ready["workers"]
        }
        supervisor = memory_of(fleet.proc.pid)
    finally:
        returncode, stderr = fleet.shutdown()
    assert returncode == 0 and stderr == "", (
        f"memory-probe fleet did not drain cleanly: rc={returncode}, "
        f"stderr={stderr!r}"
    )
    worker_uss = [m["uss_kb"] for m in per_worker.values()]
    return {
        "workers": workers,
        "per_worker": per_worker,
        "supervisor": supervisor,
        "worker_uss_max_kb": max(worker_uss),
        "worker_uss_mean_kb": sum(worker_uss) / len(worker_uss),
        "total_pss_kb": supervisor["pss_kb"]
        + sum(m["pss_kb"] for m in per_worker.values()),
    }


def fleet_reload_storm(
    fleet: FleetUnderTest, artifact: Path, expected: dict, quick: bool
) -> dict:
    """Hot-reload every tenant repeatedly while open-loop traffic runs.

    Each storm generation copies the artifact to a fresh directory (a
    new directory is a new image key — exactly what a rebuilt artifact
    rolled out by an operator looks like) and reloads all tenants onto
    it through the shared port's fleet-wide fan-out.  The acceptance
    claims, all recorded in the returned dict:

    * ``disk_parses`` advances by exactly one per generation — one
      worker parses and publishes, every other worker attaches the
      shared image instead of touching the files;
    * the concurrent load's responses stay bit-identical across every
      swap (asserted inside :func:`open_loop_load`);
    * p99 during the storm stays bounded — reloads must not stall the
      serving path.
    """
    generations = 2 if quick else 4
    rate = 200.0 if quick else 400.0
    requests = int(rate * (2 if quick else 5))
    load_threads = 8 if quick else 16
    with FleetClient(fleet.host, fleet.port) as client:
        before = client.stats()["aggregate"]["artifact_plane"]
    box: dict = {}

    def run_load():
        box["load"] = open_loop_load(
            fleet.host, fleet.port, expected,
            requests, rate, load_threads, seed=23,
            tenants=FLEET_TENANTS,
            make_client=lambda: FleetClient(fleet.host, fleet.port),
        )

    loader = threading.Thread(target=run_load)
    loader.start()
    interval = (requests / rate) / (generations + 1)
    with FleetClient(fleet.host, fleet.port) as client:
        for generation in range(generations):
            time.sleep(interval)
            target = artifact.parent / f"storm-gen-{generation}"
            shutil.copytree(artifact, target)
            for tenant in FLEET_TENANTS:
                client.reload(tenant, path=str(target))
    loader.join(600)
    if "load" not in box:
        raise RuntimeError("reload-storm load phase did not finish")
    with FleetClient(fleet.host, fleet.port) as client:
        after = client.stats()["aggregate"]["artifact_plane"]
    workers = len(fleet.ready["workers"])
    parses = after["disk_parses"] - before["disk_parses"]
    assert parses == generations, (
        f"reload storm of {generations} generations across {workers} "
        f"workers x {len(FLEET_TENANTS)} tenants cost {parses} disk "
        "parses; the shared plane promises exactly one per generation"
    )
    return {
        "generations": generations,
        "tenant_reloads": generations * len(FLEET_TENANTS),
        "load": box["load"],
        "disk_parses_delta": parses,
        "publishes_delta": after["publishes"] - before["publishes"],
        "attaches_delta": after["attaches"] - before["attaches"],
        "p99_bar_ms": 50.0,
    }


def shm_snapshot() -> set:
    """Names of live shared statistics segments on this host."""
    from repro.stats.shm import shm_root

    return {path.name for path in shm_root().glob("repro-*")}


def run_fleet(workers: int = 4, quick: bool = False) -> dict:
    """Fleet acceptance run: identity x workers, 4x load, COW memory."""
    base_rate = 400.0 if quick else 800.0  # the single-process target
    scale = 4  # the acceptance multiple over BENCH_server.json
    # The 10 ms p99 bar on the 4x phase assumes the fleet fits the
    # machine.  With N worker processes on fewer cores, open-loop p99
    # measures the scheduler queueing the load generator and workers
    # against each other — noise, not serving cost — so on such hosts
    # the 4x phase gates on throughput only and the latency gate moves
    # to the reload-storm phase, which runs at a sustainable rate.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    scaled_p99_gated = workers <= cores
    p99_bar_ms = 10.0
    scaled_rate = base_rate * scale
    baseline_requests = int(base_rate * 1)
    scaled_requests = int(scaled_rate * (2 if quick else 5))
    load_threads = 8 if quick else 16
    shm_before = shm_snapshot()
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        v1, _v2 = build_artifacts(Path(tmp))
        expected = expected_estimates(v1)
        # Memory first, on quiet fleets: request backlogs would blur
        # the per-worker footprint.
        memory_single = fleet_memory_probe(v1, 1)
        memory_fleet = fleet_memory_probe(v1, workers)
        # Post-reload footprint: after a hot reload the fork-time COW
        # pages no longer cover the served generation — only the shared
        # image keeps per-worker USS flat in N.
        reload_target = Path(tmp) / "v1-reloaded"
        shutil.copytree(v1, reload_target)
        reload_single = fleet_memory_probe(v1, 1, reload_to=reload_target)
        reload_fleet = fleet_memory_probe(
            v1, workers, reload_to=reload_target
        )
        fleet = FleetUnderTest(
            v1, workers, queue_limit=max(scaled_requests, 128)
        )
        try:
            cells = fleet_identity_sweep(fleet, expected)
            make_client = lambda: FleetClient(fleet.host, fleet.port)  # noqa: E731
            # Old single-process target load: must be comfortable (0 shed).
            baseline = open_loop_load(
                fleet.host, fleet.port, expected,
                baseline_requests, base_rate, load_threads, seed=7,
                tenants=FLEET_TENANTS, make_client=make_client,
            )
            with FleetClient(fleet.host, fleet.port) as client:
                baseline_aggregate = client.stats()["aggregate"]
            # The acceptance load: 4x the committed target.
            scaled = open_loop_load(
                fleet.host, fleet.port, expected,
                scaled_requests, scaled_rate, load_threads, seed=11,
                tenants=FLEET_TENANTS, make_client=make_client,
            )
            storm = fleet_reload_storm(fleet, v1, expected, quick)
            with FleetClient(fleet.host, fleet.port) as client:
                stats = client.stats()
        except BaseException:
            fleet.kill()
            raise
        returncode, stderr = fleet.shutdown()
    assert returncode == 0 and stderr == "", (
        f"fleet did not drain cleanly: rc={returncode}, stderr={stderr!r}"
    )
    shm_leaked = sorted(shm_snapshot() - shm_before)
    aggregate = stats["aggregate"]
    uss_ratio = (
        memory_fleet["worker_uss_max_kb"] / memory_single["worker_uss_max_kb"]
    )
    reload_uss_ratio = (
        reload_fleet["worker_uss_max_kb"]
        / reload_single["worker_uss_max_kb"]
    )
    ok = (
        aggregate["workers_reporting"] == workers
        and baseline_aggregate["shed_total"] == 0
        and scaled["throughput_rps"] >= scaled_rate * 0.95
        and (
            not scaled_p99_gated
            or scaled["latency_ms"]["p99"] <= p99_bar_ms
        )
        and uss_ratio <= 1.5
        and storm["disk_parses_delta"] == storm["generations"]
        and storm["load"]["latency_ms"]["p99"] <= storm["p99_bar_ms"]
        and reload_uss_ratio <= 1.2
        and not shm_leaked
    )
    return {
        "benchmark": "server_fleet_load",
        "mode": "quick" if quick else "full",
        "workers": workers,
        "tenants": list(FLEET_TENANTS),
        "identity_cells_verified": cells,
        "all_bit_identical": True,  # asserted per worker, every run
        "single_process_target_rps": base_rate,
        "scale_over_committed_target": scale,
        "baseline_load": baseline,
        "baseline_shed_total": baseline_aggregate["shed_total"],
        "scaled_load": scaled,
        "scaled_p99_bar_ms": p99_bar_ms,
        "scaled_p99_gated": scaled_p99_gated,
        "aggregate": {
            "workers_reporting": aggregate["workers_reporting"],
            "requests_total": aggregate["requests_total"],
            "shed_total": aggregate["shed_total"],
            "deadline_exceeded_total": aggregate["deadline_exceeded_total"],
        },
        "memory": {
            "single_worker": memory_single,
            "fleet": memory_fleet,
            "worker_uss_ratio": uss_ratio,
            "uss_ratio_bar": 1.5,
        },
        "reload_storm": storm,
        "reload_memory": {
            "single_worker": reload_single,
            "fleet": reload_fleet,
            "worker_uss_ratio": reload_uss_ratio,
            "uss_ratio_bar": 1.2,
        },
        "shm_leaked": shm_leaked,
        "ok": ok,
    }


def render_fleet(report: dict) -> str:
    scaled = report["scaled_load"]
    latency = scaled["latency_ms"]
    memory = report["memory"]
    storm = report["reload_storm"]
    reload_memory = report["reload_memory"]
    return "\n".join(
        [
            f"Fleet load ({report['workers']} workers, "
            f"mode={report['mode']})",
            f"  identity sweep       : {report['identity_cells_verified']} "
            "(shape, estimator) cells bit-identical on every worker",
            f"  baseline load        : "
            f"{report['baseline_load']['target_rate_rps']:.0f}/s (the "
            f"committed single-process target), "
            f"{report['baseline_shed_total']} shed",
            f"  scaled load          : {scaled['requests']} requests @ "
            f"{scaled['target_rate_rps']:.0f}/s target "
            f"({report['scale_over_committed_target']}x), "
            f"{scaled['throughput_rps']:.1f}/s achieved",
            f"  latency (open loop)  : p50 {latency['p50']:.2f} ms, "
            f"p90 {latency['p90']:.2f} ms, p99 {latency['p99']:.2f} ms",
            f"  shed / deadline      : "
            f"{report['aggregate']['shed_total']} / "
            f"{report['aggregate']['deadline_exceeded_total']}",
            f"  worker USS           : "
            f"{memory['fleet']['worker_uss_max_kb'] / 1024:.1f} MiB max "
            f"(N={report['workers']}) vs "
            f"{memory['single_worker']['worker_uss_max_kb'] / 1024:.1f} MiB "
            f"(N=1) -> ratio {memory['worker_uss_ratio']:.2f} "
            f"(bar {memory['uss_ratio_bar']})",
            f"  fleet PSS total      : "
            f"{memory['fleet']['total_pss_kb'] / 1024:.1f} MiB "
            f"(supervisor + {report['workers']} workers, shared pages "
            "counted once)",
            f"  reload storm         : {storm['generations']} generations "
            f"x {len(report['tenants'])} tenants under load -> "
            f"{storm['disk_parses_delta']} disk parses "
            f"({storm['attaches_delta']} shared attaches), "
            f"p99 {storm['load']['latency_ms']['p99']:.2f} ms "
            f"(bar {storm['p99_bar_ms']:.0f})",
            f"  post-reload USS      : "
            f"{reload_memory['fleet']['worker_uss_max_kb'] / 1024:.1f} MiB "
            f"max (N={report['workers']}) vs "
            f"{reload_memory['single_worker']['worker_uss_max_kb'] / 1024:.1f}"
            f" MiB (N=1) -> ratio {reload_memory['worker_uss_ratio']:.2f} "
            f"(bar {reload_memory['uss_ratio_bar']})",
            f"  shm leak check       : "
            f"{len(report['shm_leaked'])} segments left behind",
        ]
    )


def render(report: dict) -> str:
    load = report["load"]
    latency = load["latency_ms"]
    coalesce = report["coalesce"]
    return "\n".join(
        [
            f"Server load (open loop, mode={report['mode']})",
            f"  identity sweep       : {report['identity_cells_verified']} "
            "(shape, estimator) cells bit-identical to in-process",
            f"  coalesce probe       : {coalesce['fan_out']} concurrent "
            f"identical cold requests -> {coalesce['skeleton_builds']} CEG "
            f"build ({coalesce['coalesced_followers']} coalesced, "
            f"{coalesce['estimate_lru_hits']} LRU hits)",
            f"  load                 : {load['requests']} requests @ "
            f"{load['target_rate_rps']:.0f}/s target, "
            f"{load['throughput_rps']:.1f}/s achieved",
            f"  latency (open loop)  : p50 {latency['p50']:.2f} ms, "
            f"p90 {latency['p90']:.2f} ms, p99 {latency['p99']:.2f} ms, "
            f"max {latency['max']:.2f} ms",
            f"  shed / deadline      : "
            f"{report['admission']['shed_total']} / "
            f"{report['admission']['deadline_exceeded_total']}",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--json", type=Path, default=None)
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fleet mode: benchmark a subprocess `repro serve --workers N` "
             "fleet instead of the in-process single server (default 0)",
    )
    args = parser.parse_args(argv)
    if args.workers:
        report = run_fleet(workers=args.workers, quick=args.quick)
        print(render_fleet(report))
    else:
        report = run(quick=args.quick)
        print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    if not report["ok"]:
        print("FAIL: server load benchmark gates not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
