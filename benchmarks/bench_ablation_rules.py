"""Ablations of the CEG_O construction rules and the §8 entropy extension.

DESIGN.md calls out two design choices inherited from prior work — the
size-h-numerator rule and the early-cycle-closing rule — plus the
paper's future-work idea of entropy-weighted path selection.  This
bench measures each against the default max-hop-max estimator.
"""

from _common import run_once, save_result

from repro.catalog import EntropyCatalog, MarkovTable
from repro.core import (
    LowestEntropyEstimator,
    build_ceg_o,
    distinct_estimates,
    estimate_from_ceg,
)
from repro.datasets import (
    acyclic_workload,
    load_dataset,
)
from repro.errors import ReproError
from repro.experiments import summarize
from repro.experiments.metrics import q_error
from repro.experiments.report import format_table

SCALE = 0.08
DATASET = "hetionet"


def test_ablation_ceg_o_rules(benchmark):
    """Rules on/off: the rules prune formulas without losing accuracy."""
    graph = load_dataset(DATASET, SCALE)
    workload = acyclic_workload(graph, per_template=2, seed=17, sizes=(6,))
    markov = MarkovTable(graph, h=3)

    def run():
        variants = {
            "both rules (paper)": dict(),
            "no size-h rule": dict(size_h_rule=False),
            "no early closing": dict(early_cycle_closing=False),
        }
        rows = []
        for name, flags in variants.items():
            pairs = []
            formulas = 0
            for query in workload:
                try:
                    ceg = build_ceg_o(query.pattern, markov, **flags)
                    value = estimate_from_ceg(ceg, "max", "max")
                except ReproError:
                    continue
                formulas += ceg.num_edges
                pairs.append((value, query.true_cardinality))
            row = {"variant": name, "total CEG edges": formulas}
            row.update(summarize(pairs).row())
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_rules",
        format_table(rows, title="Ablation: CEG_O construction rules"),
    )
    baseline = next(r for r in rows if "paper" in str(r["variant"]))
    loose = next(r for r in rows if r["variant"] == "no size-h rule")
    # Dropping the size-h rule adds formulas (larger CEGs) ...
    assert loose["total CEG edges"] >= baseline["total CEG edges"]
    # ... without improving the max-hop-max estimate materially.
    assert float(baseline["mean(log q, -top10%)"]) <= (
        float(loose["mean(log q, -top10%)"]) * 1.25 + 0.1
    )


def test_ablation_entropy_estimator(benchmark):
    """The §8 lowest-entropy path vs max-hop-max vs the P* oracle."""
    graph = load_dataset(DATASET, SCALE)
    workload = acyclic_workload(graph, per_template=2, seed=19, sizes=(6, 7))
    markov = MarkovTable(graph, h=2)
    entropy = LowestEntropyEstimator(markov, EntropyCatalog(graph))

    def run():
        named_pairs = {"max-hop-max": [], "lowest-entropy": [], "P*": []}
        for query in workload:
            try:
                ceg = build_ceg_o(query.pattern, markov)
                named_pairs["max-hop-max"].append(
                    (estimate_from_ceg(ceg, "max", "max"),
                     query.true_cardinality)
                )
                named_pairs["lowest-entropy"].append(
                    (entropy.estimate(query.pattern), query.true_cardinality)
                )
                best = min(
                    distinct_estimates(ceg),
                    key=lambda e: q_error(e, query.true_cardinality),
                )
                named_pairs["P*"].append((best, query.true_cardinality))
            except ReproError:
                continue
        rows = []
        for name, pairs in named_pairs.items():
            row = {"estimator": name}
            row.update(summarize(pairs).row())
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_entropy",
        format_table(rows, title="Ablation: §8 entropy-weighted path choice"),
    )
    star = next(r for r in rows if r["estimator"] == "P*")
    for row in rows:
        # The oracle lower-bounds everything; both heuristics must land
        # between it and a sane ceiling.
        assert float(row["mean(log q, -top10%)"]) >= float(
            star["mean(log q, -top10%)"]
        ) - 1e-9
