"""The pre-vectorization cold estimation pipeline, kept as a baseline.

A faithful replica of the serving stack before the execution-engine
rewrite, used only by the benchmark suite so the "cold-shape speedup"
number stays measurable on any machine:

* ``legacy_build_ceg_o`` — the frozenset-based ``CEG_O`` builder
  (per-(node, extension) set algebra, no bitmask interning);
* ``legacy_molp_bound`` — the frozenset-keyed MOLP Dijkstra with a
  ``deg`` call per relaxation and per-view degree recomputation
  (delegation to the canonical relation's cache detached);
* ``legacy_serving`` — a context manager that swaps the pre-PR builders
  into :mod:`repro.service.session`, so an ordinary
  :class:`~repro.service.EstimationSession` (built with
  ``count_impl="python"``) serves through the legacy pipeline while
  paying exactly the same session bookkeeping as the optimized one —
  an apples-to-apples cold-throughput baseline.

Estimates produced here must equal the optimized stack's bit for bit —
the benchmarks assert it on every run.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager

import repro.service.session as _session_module
from repro.catalog.degrees import DegreeCatalog
from repro.catalog.markov import MarkovTable
from repro.core.ceg import CEG
from repro.core.paths import estimate_from_ceg
from repro.errors import EstimationError
from repro.query.pattern import QueryPattern
from repro.query.shape import cycles


# ----------------------------------------------------------------------
# Seed CEG_O builder (frozenset node algebra)
# ----------------------------------------------------------------------

def legacy_build_ceg_o(
    query: QueryPattern, markov: MarkovTable, cycle_rates=None
) -> CEG:
    """``build_ceg_o`` as shipped before the bitmask rewrite.

    ``cycle_rates`` is accepted for session signature compatibility but
    unsupported — the cold benchmark serves plain ``CEG_O`` specs only.
    """
    if cycle_rates is not None:
        raise NotImplementedError("legacy reference serves CEG_O only")
    if not query.is_connected():
        raise EstimationError("CEG_O requires a connected query")
    h = markov.h
    size = min(h, len(query))
    all_edges = frozenset(range(len(query)))
    stored = [
        subset
        for subset in query.connected_edge_subsets(max_size=h)
        if len(subset) <= size
    ]
    by_size: dict[int, list[frozenset[int]]] = {}
    for subset in stored:
        by_size.setdefault(len(subset), []).append(subset)
    query_cycles = cycles(query)
    card_cache: dict[frozenset[int], float] = {}
    conn_cache: dict[frozenset[int], bool] = {}

    def cardinality(subset: frozenset[int]) -> float:
        cached = card_cache.get(subset)
        if cached is None:
            cached = markov.cardinality(query.subpattern(subset))
            card_cache[subset] = cached
        return cached

    def connected(subset: frozenset[int]) -> bool:
        cached = conn_cache.get(subset)
        if cached is None:
            cached = query.is_connected_subset(subset)
            conn_cache[subset] = cached
        return cached

    def raw_candidates(node: frozenset[int]):
        result = []
        if not node:
            for extension in by_size.get(size, []):
                result.append(
                    (extension, cardinality(extension), f"|{sorted(extension)}|")
                )
            return result
        for want in range(size, 0, -1):
            for extension in by_size.get(want, []):
                difference = extension - node
                intersection = extension & node
                if not difference or not intersection:
                    continue
                if not connected(intersection):
                    continue
                denominator = cardinality(intersection)
                rate = (
                    cardinality(extension) / denominator
                    if denominator > 0
                    else 0.0
                )
                note = f"|{sorted(extension)}|/|{sorted(intersection)}|"
                result.append((node | difference, rate, note))
            if result:
                break
        return result

    def successors(node: frozenset[int]):
        candidates = raw_candidates(node)

        def closes_cycle(successor: frozenset[int]) -> bool:
            return any(
                cycle <= successor and not cycle <= node
                for cycle in query_cycles
            )

        closing = [c for c in candidates if closes_cycle(c[0])]
        return closing if closing else candidates

    ceg = CEG(source=frozenset(), target=all_edges)
    ceg.add_node(frozenset(), rank=0)
    seen: set[frozenset[int]] = {frozenset()}
    queue: list[frozenset[int]] = [frozenset()]
    while queue:
        node = queue.pop()
        if node == all_edges:
            continue
        for successor, rate, note in successors(node):
            if successor not in seen:
                seen.add(successor)
                ceg.add_node(successor, rank=len(successor))
                queue.append(successor)
            ceg.add_edge(node, successor, rate, note)
    if all_edges not in seen:
        raise EstimationError("CEG_O construction produced no complete path")
    return ceg


# ----------------------------------------------------------------------
# Seed MOLP Dijkstra (frozenset node keys, per-relaxation deg calls)
# ----------------------------------------------------------------------

def _subsets(items: tuple[str, ...]):
    n = len(items)
    for mask in range(1, 1 << n):
        yield frozenset(items[i] for i in range(n) if mask >> i & 1)


def legacy_molp_bound(query: QueryPattern, catalog: DegreeCatalog) -> float:
    """``molp_bound`` as shipped before the bitmask rewrite."""
    relations = catalog.stat_relations(query)
    for relation in relations:
        # Detach the shared-cache delegation the optimized catalog adds
        # to renamed views, restoring per-view degree recomputation.
        relation._base = None
    if any(relation.cardinality == 0 for relation in relations):
        return 0.0
    moves = [
        (relation, y)
        for relation in relations
        for y in _subsets(tuple(sorted(relation.attributes)))
    ]
    all_attrs = frozenset(query.variables)
    start: frozenset[str] = frozenset()
    dist: dict[frozenset[str], float] = {start: 1.0}
    counter = 0
    heap: list[tuple[float, int, frozenset[str]]] = [(1.0, counter, start)]
    settled: set[frozenset[str]] = set()
    while heap:
        weight, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == all_attrs:
            break
        for relation, y in moves:
            if y <= node:
                continue
            rate = relation.deg(node & y, y)
            candidate = weight * rate
            target = node | y
            if candidate < dist.get(target, float("inf")):
                dist[target] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, target))
    if all_attrs not in dist:
        raise EstimationError("CEG_M has no (∅, A) path for this query")
    return dist[all_attrs]


# ----------------------------------------------------------------------
# Serving through the legacy pipeline
# ----------------------------------------------------------------------

def _legacy_estimate_from_ceg(ceg, path_length, aggregator):
    """The pre-PR path DP: the dict-based reference implementation."""
    return estimate_from_ceg(ceg, path_length, aggregator, compiled=False)


@contextmanager
def legacy_serving():
    """Swap the pre-PR builders into the estimation session module.

    While active, any :class:`~repro.service.EstimationSession` builds
    its CEGs with the frozenset ``CEG_O`` builder, aggregates paths with
    the dict DP and bounds MOLP with the frozenset Dijkstra.  Combine
    with ``EstimationSession(..., count_impl="python")`` for the full
    pre-PR cold pipeline.
    """
    saved = (
        _session_module.build_ceg_o,
        _session_module.molp_bound,
        _session_module.estimate_from_ceg,
    )
    _session_module.build_ceg_o = legacy_build_ceg_o
    _session_module.molp_bound = legacy_molp_bound
    _session_module.estimate_from_ceg = _legacy_estimate_from_ceg
    try:
        yield
    finally:
        (
            _session_module.build_ceg_o,
            _session_module.molp_bound,
            _session_module.estimate_from_ceg,
        ) = saved
