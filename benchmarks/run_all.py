"""Run the perf-trajectory benchmarks and persist machine-readable results.

``python benchmarks/run_all.py --json`` runs the execution-engine
benchmark (vectorized vs legacy cyclic counting), the service
benchmark (cold-shape ``estimate_batch`` throughput vs the pre-PR
pipeline), the server load benchmark (open-loop traffic against the
network serving tier) and the delta-maintenance benchmark (incremental
statistics updates vs full rebuild) and the build benchmark (parallel,
resumable statistics construction on the million-edge ``synth1m``
preset) and writes ``BENCH_engine.json`` / ``BENCH_service.json`` /
``BENCH_server.json`` / ``BENCH_delta.json`` / ``BENCH_build.json``
next to this script — the perf baseline future PRs diff against.
Re-run with ``--json`` after perf-relevant changes and commit the
updated files so the trajectory stays in history.

``--quick`` switches every benchmark to its CI-smoke configuration
(smaller scale, "not slower" bars).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from types import SimpleNamespace

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))
sys.path.insert(0, str(HERE))

import bench_build  # noqa: E402
import bench_delta_maintenance  # noqa: E402
import bench_engine_vectorized  # noqa: E402
import bench_server_load  # noqa: E402
import bench_service_cold  # noqa: E402

# The fleet acceptance run shares bench_server_load's machinery but is
# its own benchmark artifact: 2 workers in --quick (CI), 4 in full.
_fleet_bench = SimpleNamespace(
    run=lambda quick=False: bench_server_load.run_fleet(
        workers=2 if quick else 4, quick=quick
    ),
    render=bench_server_load.render_fleet,
)

BENCHES = (
    ("BENCH_engine.json", bench_engine_vectorized),
    ("BENCH_service.json", bench_service_cold),
    ("BENCH_server.json", bench_server_load),
    ("BENCH_fleet.json", _fleet_bench),
    ("BENCH_delta.json", bench_delta_maintenance),
    ("BENCH_build.json", bench_build),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        action="store_true",
        help="write BENCH_engine.json / BENCH_service.json / BENCH_server.json",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=HERE,
        help="directory for the JSON artifacts (default: benchmarks/)",
    )
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    args = parser.parse_args(argv)

    failed = False
    for filename, module in BENCHES:
        report = module.run(quick=args.quick)
        report["python"] = platform.python_version()
        report["machine"] = platform.machine()
        print(module.render(report))
        print()
        if not report["ok"]:
            failed = True
        if args.json:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            path = args.out_dir / filename
            path.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
