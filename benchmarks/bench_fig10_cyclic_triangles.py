"""Figure 10: the estimator space on cyclic queries with only triangles.

Paper shape: same story as acyclic queries — the max aggregator wins,
because these queries are still generally underestimated.
"""

from _common import by_key, metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure10_cyclic_triangles

CONFIG = ExperimentConfig(scale=0.08, per_template=3)


def test_fig10_cyclic_triangles(benchmark):
    rows, rendered = run_once(
        benchmark, lambda: figure10_cyclic_triangles(CONFIG)
    )
    save_result("fig10_cyclic_triangles", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert datasets, "no dataset produced triangle-only cyclic queries"
    key = "mean(log q, -top10%)"
    wins = 0
    comparisons = 0
    for dataset in datasets:
        if not by_key(rows, dataset=dataset, estimator="max-hop-max"):
            continue
        comparisons += 1
        best_max = metric(rows, key, dataset=dataset, estimator="max-hop-max")
        worst_min = metric(rows, key, dataset=dataset, estimator="min-hop-min")
        if best_max <= worst_min * 1.05 + 0.05:
            wins += 1
    assert comparisons >= 1
    assert wins >= max(1, comparisons - 1)  # max-aggr wins (nearly) everywhere
