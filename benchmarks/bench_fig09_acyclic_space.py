"""Figure 9: the nine optimistic estimators + P* on CEG_O, acyclic queries.

Paper shape: with any path-length heuristic, max-aggr beats avg-aggr
beats min-aggr (the latter underestimates almost everywhere); max-hop
performs at least as well as min-hop; P* shows little room left.
"""

from _common import metric, run_once, save_result

from repro.experiments import ExperimentConfig, figure9_acyclic_space

CONFIG = ExperimentConfig(scale=0.08, per_template=2, acyclic_sizes=(6, 7))


def test_fig09_acyclic_space(benchmark):
    rows, rendered = run_once(benchmark, lambda: figure9_acyclic_space(CONFIG))
    save_result("fig09_acyclic_space", rendered)
    datasets = sorted({row["dataset"] for row in rows})
    assert len(datasets) >= 4

    def mean_over_datasets(estimator: str, column: str) -> float:
        return sum(
            metric(rows, column, dataset=d, estimator=estimator)
            for d in datasets
        ) / len(datasets)

    key = "mean(log q, -top10%)"
    # max-aggr < avg-aggr < min-aggr in trimmed mean log q-error.
    for hop in ("max-hop", "min-hop", "all-hops"):
        assert mean_over_datasets(f"{hop}-max", key) <= mean_over_datasets(
            f"{hop}-avg", key
        ) * 1.1 + 0.05
        assert mean_over_datasets(f"{hop}-avg", key) <= mean_over_datasets(
            f"{hop}-min", key
        ) * 1.1 + 0.05
    # The min aggregator underestimates nearly always (§6.2.1).
    assert mean_over_datasets("all-hops-min", "under%") > 60.0
    # P* (the oracle) dominates every heuristic.
    star = mean_over_datasets("P*", key)
    assert star <= mean_over_datasets("max-hop-max", key) + 1e-9
