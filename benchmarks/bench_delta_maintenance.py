"""Incremental statistics maintenance vs full rebuild under small updates.

The dynamic-graph proposition: a sub-MB summary should track graph
mutations at a cost proportional to the *update batch*, not to the
graph.  This benchmark builds full-enumeration statistics for a
mid-size preset, applies a sequence of small randomized insert/delete
batches through :func:`repro.delta.maintain.apply_updates`, and compares
against rebuilding the statistics cold after every batch.

Correctness is asserted on every round before timing is even reported:
the incrementally maintained Markov table and degree catalog must be
**bit-identical** (as artifact payloads) to the cold rebuild on the
mutated graph.  Acceptance bar: >= 5x cheaper than rebuild per batch
(>= 1x in ``--quick`` mode).

Runs standalone: ``python benchmarks/bench_delta_maintenance.py
[--quick] [--json PATH]``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import load_dataset  # noqa: E402
from repro.delta import apply_updates, random_update_batch  # noqa: E402
from repro.stats import StatsBuildConfig, build_statistics  # noqa: E402


def run(quick: bool = False) -> dict:
    scale = 0.02 if quick else 0.05
    rounds = 2 if quick else 4
    # "Small" means small relative to the label set too: 4 ops touch at
    # most 4 of hetionet's 24 labels, so most catalog keys are provably
    # unaffected and skipped — the regime incremental maintenance is for.
    batch_ops = 4
    graph = load_dataset("hetionet", scale)
    config = StatsBuildConfig(h=2, molp_h=2, baselines=False)

    started = time.perf_counter()
    store = build_statistics(graph, config, dataset_name="hetionet")
    initial_build_seconds = time.perf_counter() - started

    rng = random.Random(20260730)
    delta_seconds = 0.0
    rebuild_seconds = 0.0
    modes: list[str] = []
    for round_index in range(rounds):
        batch = random_update_batch(
            store.graph, rng, num_inserts=batch_ops // 2,
            num_deletes=batch_ops // 2,
        )
        started = time.perf_counter()
        outcome = apply_updates(store, batch, compact_threshold=0.5)
        delta_seconds += time.perf_counter() - started
        modes.append(outcome.mode)

        started = time.perf_counter()
        cold = build_statistics(store.graph, config, dataset_name="hetionet")
        rebuild_seconds += time.perf_counter() - started

        assert store.markov.to_artifact() == cold.markov.to_artifact(), (
            f"round {round_index}: maintained Markov table diverged from "
            "the cold rebuild"
        )
        assert store.degrees.to_artifact() == cold.degrees.to_artifact(), (
            f"round {round_index}: maintained degree catalog diverged from "
            "the cold rebuild"
        )

    speedup = rebuild_seconds / delta_seconds
    bar = 1.0 if quick else 5.0
    return {
        "benchmark": "delta_maintenance",
        "mode": "quick" if quick else "full",
        "dataset": "hetionet",
        "scale": scale,
        "graph_edges": store.graph.num_edges,
        "rounds": rounds,
        "ops_per_batch": batch_ops,
        "maintenance_modes": modes,
        "initial_build_seconds": initial_build_seconds,
        "delta_seconds_total": delta_seconds,
        "rebuild_seconds_total": rebuild_seconds,
        "delta_seconds_per_batch": delta_seconds / rounds,
        "rebuild_seconds_per_batch": rebuild_seconds / rounds,
        "speedup": speedup,
        "speedup_bar": bar,
        "ok": speedup >= bar,
    }


def render(report: dict) -> str:
    return "\n".join(
        [
            "Incremental delta maintenance vs full rebuild "
            f"(hetionet@{report['scale']}, mode={report['mode']})",
            f"  graph edges          : {report['graph_edges']}",
            f"  update batches       : {report['rounds']} x "
            f"{report['ops_per_batch']} ops "
            f"({'/'.join(report['maintenance_modes'])})",
            f"  full rebuild / batch : "
            f"{report['rebuild_seconds_per_batch'] * 1000:10.1f} ms",
            f"  delta apply / batch  : "
            f"{report['delta_seconds_per_batch'] * 1000:10.1f} ms",
            f"  speedup              : {report['speedup']:10.2f}x "
            f"(bar: >= {report['speedup_bar']:.0f}x)",
            "  maintained catalogs bit-identical to cold rebuilds every "
            "round",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    print(render(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    if not report["ok"]:
        print(
            f"FAIL: delta-maintenance speedup {report['speedup']:.2f}x "
            f"below the {report['speedup_bar']:.0f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
