"""Table 2: dataset descriptions."""

from _common import run_once, save_result

from repro.experiments import ExperimentConfig, table2_datasets

CONFIG = ExperimentConfig(scale=0.12)


def test_table2_datasets(benchmark):
    rows, rendered = run_once(benchmark, lambda: table2_datasets(CONFIG))
    save_result("table2_datasets", rendered)
    assert len(rows) == 6
    names = {row["dataset"] for row in rows}
    assert names == {"imdb", "yago", "dblp", "watdiv", "hetionet", "epinions"}
    # IMDb is the largest dataset, as in the paper's Table 2.
    sizes = {row["dataset"]: row["|E|"] for row in rows}
    assert sizes["imdb"] == max(sizes.values())
