"""Service throughput: cold vs warm queries/sec on a repeated-shape workload.

The service claim: a multi-user workload dominated by repeated query
shapes (the same templates instantiated with fresh variable names, the
paper's own per-template setup) should be served from the canonical-shape
caches at a large multiple of the cold rate.  The acceptance bar is a
>= 5x warm-over-cold speedup; in practice the warm pass is orders of
magnitude faster because it never rebuilds a CEG or re-runs the path DP.
"""

import time

from _common import run_once, save_result

from repro.datasets import acyclic_workload, cyclic_workload, load_dataset
from repro.service import EstimationSession

SPECS = ("max-hop-max", "min-hop-min", "all-hops-avg", "MOLP")


def _repeated_shape_workload(graph, copies: int = 4):
    """Template instances plus renamed copies: many queries, few shapes."""
    base = acyclic_workload(graph, per_template=2, seed=13, sizes=(6, 7))
    base += cyclic_workload(graph, per_template=2, seed=13)
    patterns = []
    for query in base:
        patterns.append(query.pattern)
        for copy in range(copies - 1):
            mapping = {
                var: f"c{copy}_{i}"
                for i, var in enumerate(query.pattern.variables)
            }
            patterns.append(query.pattern.rename(mapping))
    return patterns


def test_service_throughput(benchmark):
    graph = load_dataset("hetionet", 0.06)
    patterns = _repeated_shape_workload(graph)
    assert len(patterns) >= 40

    def run():
        session = EstimationSession(graph, h=3)
        started = time.perf_counter()
        cold = session.estimate_batch(patterns, specs=SPECS)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = session.estimate_batch(patterns, specs=SPECS)
        warm_seconds = time.perf_counter() - started
        return cold, cold_seconds, warm, warm_seconds, session.stats()

    cold, cold_seconds, warm, warm_seconds, stats = run_once(benchmark, run)

    queries = len(patterns) * len(SPECS)
    cold_qps = queries / cold_seconds
    warm_qps = queries / warm_seconds
    speedup = warm_qps / cold_qps
    rendered = "\n".join([
        "Service throughput (repeated-shape workload)",
        f"  queries x estimators : {queries}",
        f"  cold                 : {cold_qps:12.1f} estimates/sec",
        f"  warm                 : {warm_qps:12.1f} estimates/sec",
        f"  warm/cold speedup    : {speedup:12.1f}x",
        f"  skeleton cache       : {stats.skeletons.as_dict()}",
        f"  estimate cache       : {stats.estimates.as_dict()}",
    ])
    save_result("service_throughput", rendered)

    # Deterministic batch ordering: warm pass returns the same estimates.
    for cold_item, warm_item in zip(cold.items, warm.items):
        assert cold_item.index == warm_item.index
        assert cold_item.estimator == warm_item.estimator
        assert cold_item.estimate == warm_item.estimate
    # Warm pass is pure cache hits.
    assert warm.ok and cold.ok
    # The acceptance bar: >= 5x warm-over-cold.
    assert speedup >= 5.0, f"warm/cold speedup only {speedup:.1f}x"
