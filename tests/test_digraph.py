"""Tests for labeled digraph storage and generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import LabeledDiGraph, generate_graph, zipf_weights


class TestConstruction:
    def test_from_triples(self, tiny_graph):
        assert tiny_graph.num_vertices == 8
        assert tiny_graph.num_edges == 10
        assert tiny_graph.labels == ("A", "B", "C")

    def test_duplicate_edges_removed(self):
        graph = LabeledDiGraph.from_triples(
            [(0, 1, "A"), (0, 1, "A"), (1, 2, "A")], num_vertices=3
        )
        assert graph.cardinality("A") == 2

    def test_vertex_bound_checked(self):
        with pytest.raises(DatasetError):
            LabeledDiGraph.from_triples([(0, 5, "A")], num_vertices=3)

    def test_zero_vertices_rejected(self):
        with pytest.raises(DatasetError):
            LabeledDiGraph(0, {})

    def test_unknown_label(self, tiny_graph):
        assert tiny_graph.cardinality("Z") == 0
        with pytest.raises(DatasetError):
            tiny_graph.relation("Z")
        assert "Z" not in tiny_graph


class TestAdjacency:
    def test_out_neighbors(self, tiny_graph):
        relation = tiny_graph.relation("A")
        assert sorted(relation.out_neighbors(0)) == [2, 3]
        assert list(relation.out_neighbors(7)) == []

    def test_in_neighbors(self, tiny_graph):
        relation = tiny_graph.relation("A")
        assert sorted(relation.in_neighbors(2)) == [0, 1]

    def test_degrees(self, tiny_graph):
        relation = tiny_graph.relation("C")
        assert relation.out_degree(4) == 2
        assert relation.in_degree(6) == 2

    def test_has_edge(self, tiny_graph):
        relation = tiny_graph.relation("B")
        assert relation.has_edge(2, 4, 8)
        assert not relation.has_edge(4, 2, 8)


class TestStatistics:
    def test_degree_arrays(self, tiny_graph):
        out = tiny_graph.out_degrees("A")
        assert out[0] == 2 and out[1] == 1 and out.sum() == 3
        incoming = tiny_graph.in_degrees("B")
        assert incoming[4] == 2

    def test_degree_array_for_missing_label(self, tiny_graph):
        assert tiny_graph.out_degrees("Z").sum() == 0

    def test_distinct_counts(self, tiny_graph):
        assert tiny_graph.distinct_sources("A") == 2
        assert tiny_graph.distinct_destinations("A") == 2

    def test_adjacency_csr(self, tiny_graph):
        matrix = tiny_graph.adjacency_csr("A")
        assert matrix.shape == (8, 8)
        assert matrix[0, 2] == 1 and matrix[2, 0] == 0
        # Cached object is reused.
        assert tiny_graph.adjacency_csr("A") is matrix

    def test_summary(self, tiny_graph):
        summary = tiny_graph.summary()
        assert summary == {
            "num_vertices": 8, "num_edges": 10, "num_labels": 3,
        }

    def test_triples_roundtrip(self, tiny_graph):
        triples = list(tiny_graph.triples())
        rebuilt = LabeledDiGraph.from_triples(triples, num_vertices=8)
        assert rebuilt.num_edges == tiny_graph.num_edges


class TestGenerator:
    def test_deterministic(self):
        a = generate_graph(100, 500, 6, seed=42)
        b = generate_graph(100, 500, 6, seed=42)
        assert a.num_edges == b.num_edges
        assert list(a.triples()) == list(b.triples())

    def test_seed_changes_graph(self):
        a = generate_graph(100, 500, 6, seed=1)
        b = generate_graph(100, 500, 6, seed=2)
        assert list(a.triples()) != list(b.triples())

    def test_label_budget_respected(self):
        graph = generate_graph(50, 300, 4, seed=0)
        assert len(graph.labels) <= 4

    def test_closure_creates_triangles(self):
        from repro.engine import count_pattern
        from repro.query import templates

        graph = generate_graph(80, 800, 2, seed=3, closure=0.5)
        total = 0.0
        for la in graph.labels:
            for lb in graph.labels:
                for lc in graph.labels:
                    total += count_pattern(
                        graph, templates.triangle().with_labels([la, lb, lc])
                    )
        assert total > 0

    def test_zipf_weights_normalised(self):
        weights = zipf_weights(10, 1.0)
        assert weights.shape == (10,)
        assert np.isclose(weights.sum(), 1.0)
        assert weights[0] > weights[-1]

    def test_zipf_rejects_empty(self):
        with pytest.raises(DatasetError):
            zipf_weights(0, 1.0)

    def test_generator_rejects_no_labels(self):
        with pytest.raises(DatasetError):
            generate_graph(10, 10, 0, seed=0)


class TestIO:
    def test_edge_list_roundtrip(self, tiny_graph, tmp_path):
        from repro.graph import load_edge_list, save_edge_list

        path = tmp_path / "graph.tsv"
        save_edge_list(tiny_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert list(loaded.triples()) == list(tiny_graph.triples())

    def test_npz_roundtrip(self, tiny_graph, tmp_path):
        from repro.graph import load_npz, save_npz

        path = tmp_path / "graph.npz"
        save_npz(tiny_graph, path)
        loaded = load_npz(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert list(loaded.triples()) == list(tiny_graph.triples())

    def test_empty_edge_list_rejected(self, tmp_path):
        from repro.graph import load_edge_list

        path = tmp_path / "empty.tsv"
        path.write_text("# vertices=3\n")
        with pytest.raises(DatasetError):
            load_edge_list(path)
