"""Tests for max-degree statistics (StatRelation / DegreeCatalog)."""

import numpy as np
import pytest

from repro.catalog import DegreeCatalog, StatRelation, group_max_distinct
from repro.errors import MissingStatisticError
from repro.query import QueryPattern, parse_pattern


def _f(*items):
    return frozenset(items)


class TestGroupMaxDistinct:
    def test_total_distinct_with_empty_x(self):
        rows = np.asarray([[0, 1], [0, 1], [2, 3]])
        assert group_max_distinct(rows, [], [0, 1], 10) == 2

    def test_grouped_max(self):
        rows = np.asarray([[0, 1], [0, 2], [1, 3]])
        assert group_max_distinct(rows, [0], [0, 1], 10) == 2

    def test_duplicates_in_projection_collapse(self):
        rows = np.asarray([[0, 1, 9], [0, 1, 8], [0, 2, 7]])
        # Projecting to the first two columns gives 2 distinct tuples
        # for x-value 0, not 3.
        assert group_max_distinct(rows, [0], [0, 1], 10) == 2

    def test_empty_rows(self):
        rows = np.empty((0, 2), dtype=np.int64)
        assert group_max_distinct(rows, [0], [0, 1], 10) == 0.0


class TestBaseRelationDegrees:
    def test_cardinality(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[A]-> d"))
        assert relation.cardinality == 3

    def test_max_out_degree(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[A]-> d"))
        # Vertex 0 has two outgoing A edges.
        assert relation.deg(_f("s"), _f("s", "d")) == 2

    def test_max_in_degree(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[C]-> d"))
        # Vertex 6 has two incoming C edges.
        assert relation.deg(_f("d"), _f("s", "d")) == 2

    def test_distinct_projection(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[A]-> d"))
        assert relation.deg(_f(), _f("s")) == 2  # sources {0, 1}
        assert relation.deg(_f(), _f("d")) == 2  # destinations {2, 3}

    def test_full_tuple_degree_is_one(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[A]-> d"))
        assert relation.deg(_f("s", "d"), _f("s", "d")) == 1

    def test_x_equals_y_degree_is_one(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[A]-> d"))
        assert relation.deg(_f("s"), _f("s")) == 1

    def test_invalid_subset_relation(self, tiny_graph):
        relation = StatRelation(tiny_graph, parse_pattern("s -[A]-> d"))
        with pytest.raises(MissingStatisticError):
            relation.deg(_f("s", "d"), _f("s"))
        with pytest.raises(MissingStatisticError):
            relation.deg(_f("q"), _f("q"))


class TestJoinRelationDegrees:
    def test_two_join_cardinality(self, tiny_graph):
        relation = StatRelation(
            tiny_graph, parse_pattern("x -[A]-> y -[B]-> z")
        )
        assert relation.cardinality == 5

    def test_two_join_degree(self, tiny_graph):
        relation = StatRelation(
            tiny_graph, parse_pattern("x -[A]-> y -[B]-> z")
        )
        # Middle vertex 2 participates in 2*2=4 of the 5 matches.
        assert relation.deg(_f("y"), _f("x", "y", "z")) == 4

    def test_cyclic_stat_pattern(self, small_random_graph):
        labels = small_random_graph.labels
        triangle = QueryPattern(
            [("a", "b", labels[0]), ("b", "c", labels[1]), ("c", "a", labels[2])]
        )
        relation = StatRelation(small_random_graph, triangle)
        assert relation.deg(_f(), _f("a", "b", "c")) == relation.cardinality


class TestDegreeCatalog:
    def test_stat_relations_h1(self, tiny_graph):
        catalog = DegreeCatalog(tiny_graph, h=1)
        query = parse_pattern("a -[A]-> b -[B]-> c")
        relations = catalog.stat_relations(query)
        assert len(relations) == 2  # the two atoms

    def test_stat_relations_h2(self, tiny_graph):
        catalog = DegreeCatalog(tiny_graph, h=2)
        query = parse_pattern("a -[A]-> b -[B]-> c")
        relations = catalog.stat_relations(query)
        assert len(relations) == 3  # two atoms + the 2-join

    def test_rejects_oversized(self, tiny_graph):
        catalog = DegreeCatalog(tiny_graph, h=1)
        with pytest.raises(MissingStatisticError):
            catalog.relation_for(parse_pattern("a -[A]-> b -[B]-> c"))

    def test_cache_with_renaming(self, tiny_graph):
        catalog = DegreeCatalog(tiny_graph, h=2)
        first = catalog.relation_for(parse_pattern("a -[A]-> b -[B]-> c"))
        second = catalog.relation_for(parse_pattern("x -[A]-> y -[B]-> z"))
        assert first.cardinality == second.cardinality
        assert second.deg(_f("y"), _f("x", "y", "z")) == first.deg(
            _f("b"), _f("a", "b", "c")
        )

    def test_renamed_view_uses_right_names(self, tiny_graph):
        catalog = DegreeCatalog(tiny_graph, h=2)
        catalog.relation_for(parse_pattern("a -[A]-> b -[B]-> c"))
        view = catalog.relation_for(parse_pattern("q -[A]-> r -[B]-> s"))
        assert view.attributes == _f("q", "r", "s")

    def test_h_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            DegreeCatalog(tiny_graph, h=0)

    def test_monotone_in_x(self, medium_random_graph):
        """deg(X2, Y) <= deg(X1, Y) whenever X1 ⊆ X2 (antitone in X)."""
        labels = medium_random_graph.labels
        catalog = DegreeCatalog(medium_random_graph, h=2)
        relation = catalog.relation_for(
            QueryPattern([("a", "b", labels[0]), ("b", "c", labels[1])])
        )
        y = _f("a", "b", "c")
        d_empty = relation.deg(_f(), y)
        d_b = relation.deg(_f("b"), y)
        d_ab = relation.deg(_f("a", "b"), y)
        assert d_empty >= d_b >= d_ab
