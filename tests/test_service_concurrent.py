"""Concurrent ``estimate_batch`` under a tiny LRU (the thrash test).

Satellite acceptance: with both caches capped at two entries, many
threads and heavily duplicated shapes, the session must (a) raise
nothing, (b) return exactly the sequential run's floats, and (c) keep
its cache counters consistent — evictions churn correctness-invisibly.
"""

import random
import threading

import pytest

from repro.query.canonical import canonical_key
from repro.service.session import EstimationSession

SPECS = ["max-hop-max", "all-hops-avg", "MOLP"]


@pytest.fixture(scope="module")
def workload(small_random_graph):
    """~60 queries over 6 distinct shapes (renamed duplicates, shuffled)."""
    from repro.query.parser import parse_pattern

    templates = [
        "a -[L0]-> b",
        "a -[L0]-> b -[L1]-> c",
        "a -[L1]-> b -[L2]-> c",
        "a -[L0]-> b -[L1]-> c -[L2]-> d",
        "a -[L2]-> b, a -[L3]-> c",
        "a -[L0]-> b, c -[L1]-> b",
    ]
    rng = random.Random(7)
    queries = []
    for round_number in range(10):
        for position, template in enumerate(templates):
            text = template
            for variable in "abcd":
                text = text.replace(
                    f"{variable} ", f"v{round_number}_{position}_{variable} "
                ).replace(
                    f"> {variable}", f"> v{round_number}_{position}_{variable}"
                )
            queries.append(parse_pattern(text))
    rng.shuffle(queries)
    return queries


@pytest.fixture(scope="module")
def sequential_reference(small_random_graph, workload):
    session = EstimationSession(small_random_graph, h=3, molp_h=2)
    return session.estimate_batch(workload, specs=SPECS, max_workers=1)


def tiny_session(graph):
    return EstimationSession(
        graph, h=3, molp_h=2, skeleton_capacity=2, estimate_capacity=2
    )


class TestTinyLruUnderThreads:
    def test_batch_matches_sequential_exactly(
        self, small_random_graph, workload, sequential_reference
    ):
        session = tiny_session(small_random_graph)
        batch = session.estimate_batch(workload, specs=SPECS, max_workers=16)
        assert batch.ok, f"thrashed batch failed: {batch.failures[:3]}"
        for index in range(len(workload)):
            for spec in SPECS:
                assert (
                    batch.item(index, spec).estimate
                    == sequential_reference.item(index, spec).estimate
                ), f"query {index} spec {spec} diverged under eviction"

    def test_raw_threads_no_exceptions_and_consistent_counters(
        self, small_random_graph, workload, sequential_reference
    ):
        session = tiny_session(small_random_graph)
        expected = {
            (index, spec): sequential_reference.item(index, spec).estimate
            for index in range(len(workload))
            for spec in SPECS
        }
        errors: list[Exception] = []
        barrier = threading.Barrier(16)

        def worker(offset):
            try:
                barrier.wait(10)
                for index in range(offset, len(workload), 16):
                    for spec in SPECS:
                        value = session.estimate(workload[index], spec)
                        assert value == expected[(index, spec)]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(offset,))
            for offset in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert errors == [], f"worker raised: {errors[:3]}"

        stats = session.stats()
        calls = len(workload) * len(SPECS)
        # Every estimate() performs exactly one estimate-cache lookup.
        assert stats.estimates.lookups == calls
        assert stats.estimates.hits + stats.estimates.misses == calls
        # Optimistic misses are the only skeleton-cache lookups.
        optimistic_specs = [spec for spec in SPECS if spec != "MOLP"]
        assert stats.skeletons.lookups <= stats.estimates.misses
        assert stats.skeletons.lookups >= len(optimistic_specs)
        for cache in (stats.skeletons, stats.estimates):
            assert cache.size <= cache.capacity == 2
            assert cache.evictions <= cache.misses
        # 6 shapes x 3 specs = 18 distinct estimate keys fought over 2
        # slots: eviction churn is guaranteed, and survived.
        distinct_keys = len(
            {(canonical_key(query), spec) for query in workload for spec in SPECS}
        )
        assert distinct_keys == 18
        assert stats.estimates.evictions >= distinct_keys - 2
