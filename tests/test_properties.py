"""Cross-module property tests (hypothesis).

These pin down invariants that connect subsystems:

* the path-statistics DP agrees with explicit path enumeration on
  random DAGs;
* the join engine's final table size equals the counting engine's
  answer on random graph/query pairs;
* hash partitioning is lossless: per-partition exact counts sum to the
  whole;
* estimator ordering (min <= avg <= max) holds on arbitrary CEGs.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CEG, distinct_estimates, estimate_from_ceg, hop_statistics
from repro.engine import count_pattern, extend_by_edge, start_table
from repro.graph import LabeledDiGraph
from repro.query import templates


@st.composite
def random_dags(draw):
    """A small layered DAG with positive rates."""
    layers = draw(st.integers(min_value=2, max_value=4))
    width = draw(st.integers(min_value=1, max_value=3))
    ceg = CEG(source=("n", 0, 0), target=("t",))
    names: list[list[tuple]] = []
    for layer in range(layers):
        row = [("n", layer, i) for i in range(width)]
        names.append(row)
        for node in row:
            ceg.add_node(node, rank=layer)
    ceg.add_node(("t",), rank=layers)
    edges = []
    for layer in range(layers - 1):
        for a in names[layer]:
            for b in names[layer + 1]:
                if draw(st.booleans()):
                    rate = draw(
                        st.floats(min_value=0.1, max_value=9.0)
                    )
                    ceg.add_edge(a, b, rate)
                    edges.append((a, b, rate))
    for a in names[-1]:
        rate = draw(st.floats(min_value=0.1, max_value=9.0))
        ceg.add_edge(a, ("t",), rate)
        edges.append((a, ("t",), rate))
    return ceg


def _enumerate_paths(ceg: CEG):
    """All (source, target) path products by explicit DFS."""
    results: list[tuple[int, float]] = []

    def walk(node, hops, product):
        if node == ceg.target:
            results.append((hops, product))
            return
        for edge in ceg.out_edges(node):
            walk(edge.target, hops + 1, product * edge.rate)

    walk(ceg.source, 0, 1.0)
    return results


class TestPathDpAgainstEnumeration:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_hop_statistics_match(self, ceg):
        paths = _enumerate_paths(ceg)
        per_hop = hop_statistics(ceg)
        assert sum(s.count for s in per_hop.values()) == len(paths)
        if not paths:
            return
        by_hops: dict[int, list[float]] = {}
        for hops, product in paths:
            by_hops.setdefault(hops, []).append(product)
        for hops, values in by_hops.items():
            stats = per_hop[hops]
            assert stats.count == len(values)
            assert stats.total == pytest.approx(sum(values))
            assert stats.minimum == pytest.approx(min(values))
            assert stats.maximum == pytest.approx(max(values))

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_aggregator_ordering(self, ceg):
        if not _enumerate_paths(ceg):
            return
        for hop in ("max", "min", "all"):
            low = estimate_from_ceg(ceg, hop, "min")
            mid = estimate_from_ceg(ceg, hop, "avg")
            high = estimate_from_ceg(ceg, hop, "max")
            assert low <= mid + 1e-9
            assert mid <= high + 1e-9

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_distinct_estimates_are_path_products(self, ceg):
        paths = _enumerate_paths(ceg)
        if not paths:
            return
        products = {round(p, 6) for _, p in paths}
        found = {round(e, 6) for e in distinct_estimates(ceg)}
        assert found <= {round(p, 5) for _, p in paths} or len(found) <= len(
            products
        )


@st.composite
def graph_query_pairs(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    labels = ["A", "B", "C"]
    num_edges = draw(st.integers(min_value=3, max_value=20))
    triples = set()
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        triples.add((u, v, draw(st.sampled_from(labels))))
    graph = LabeledDiGraph.from_triples(sorted(triples), num_vertices=n)
    shape = draw(st.sampled_from(["path2", "path3", "star2", "triangle"]))
    base = {
        "path2": templates.path(2),
        "path3": templates.path(3),
        "star2": templates.star(2),
        "triangle": templates.triangle(),
    }[shape]
    pattern = base.with_labels(
        [draw(st.sampled_from(labels)) for _ in range(len(base))]
    )
    return graph, pattern


class TestJoinEngineAgainstCounter:
    @given(graph_query_pairs())
    @settings(max_examples=60, deadline=None)
    def test_full_join_matches_count(self, case):
        graph, pattern = case
        from repro.query.shape import spanning_tree_and_closures

        tree, closures = spanning_tree_and_closures(pattern)
        order = tree + closures
        table = start_table(graph, pattern.edges[order[0]])
        for index in order[1:]:
            table = extend_by_edge(graph, table, pattern.edges[index])
        assert table.size == pytest.approx(count_pattern(graph, pattern))

    @given(graph_query_pairs())
    @settings(max_examples=30, deadline=None)
    def test_all_join_orders_agree(self, case):
        graph, pattern = case
        from repro.errors import PlanningError

        counts = set()
        for order in itertools.permutations(range(len(pattern))):
            try:
                table = start_table(graph, pattern.edges[order[0]])
                for index in order[1:]:
                    table = extend_by_edge(graph, table, pattern.edges[index])
            except PlanningError:
                continue  # disconnected prefix
            counts.add(table.size)
        assert len(counts) == 1


class TestPartitioningLossless:
    @given(graph_query_pairs(), st.sampled_from([4, 9, 16]))
    @settings(max_examples=30, deadline=None)
    def test_partition_counts_sum_to_whole(self, case, budget):
        from repro.catalog import BoundSketchPartitioner
        from repro.core import join_attributes

        graph, pattern = case
        attrs = join_attributes(pattern)
        if not attrs:
            return
        truth = count_pattern(graph, pattern)
        partitioner = BoundSketchPartitioner(graph, budget)
        total = 0.0
        for subgraph, subquery in partitioner.subqueries(pattern, attrs):
            total += count_pattern(subgraph, subquery)
        assert total == pytest.approx(truth)
