"""End-to-end integration tests across subsystems.

Each test exercises the full pipeline a downstream user would run:
dataset -> statistics -> estimator -> metric, or dataset -> workload ->
optimizer -> executor, checking cross-module consistency rather than
single-module behaviour.
"""

import pytest

from repro import (
    MarkovTable,
    MolpEstimator,
    OptimisticEstimator,
    count_pattern,
    load_dataset,
)
from repro.baselines import Rdf3xDefaultEstimator, WanderJoinEstimator
from repro.catalog import CycleClosingRates
from repro.core import (
    PStarOracle,
    all_nine_estimators,
    build_ceg_o,
    build_ceg_ocr,
    distinct_estimates,
    estimate_from_ceg,
    molp_sketch_bound,
    optimistic_sketch_estimate,
)
from repro.datasets import acyclic_workload, cyclic_workload
from repro.experiments import q_error, run_harness, summarize
from repro.planner import execute_plan, optimize_left_deep

SCALE = 0.04


@pytest.fixture(scope="module")
def graph():
    return load_dataset("hetionet", SCALE)


@pytest.fixture(scope="module")
def workload(graph):
    return acyclic_workload(graph, per_template=1, seed=23, sizes=(6,))


class TestEstimationPipeline:
    def test_exactness_with_large_h(self, graph, workload):
        """h >= |Q| turns every estimator into the exact count."""
        query = workload[0]
        markov = MarkovTable(graph, h=len(query.pattern))
        for estimator in all_nine_estimators(markov).values():
            assert estimator.estimate(query.pattern) == pytest.approx(
                query.true_cardinality
            )

    def test_molp_dominates_all_optimistic_overestimates(
        self, graph, workload
    ):
        """The MOLP bound caps every CEG_O path estimate's truth side:
        bound >= truth for each workload query."""
        molp = MolpEstimator(graph, h=2)
        for query in workload:
            assert molp.estimate(query.pattern) >= query.true_cardinality - 1e-6

    def test_pstar_vs_truth(self, graph, workload):
        markov = MarkovTable(graph, h=2)
        oracle = PStarOracle(markov)
        for query in workload[:4]:
            best = oracle.estimate(query.pattern, query.true_cardinality)
            estimates = distinct_estimates(
                build_ceg_o(query.pattern, markov)
            )
            target = min(
                q_error(e, query.true_cardinality) for e in estimates
            )
            assert q_error(best, query.true_cardinality) == pytest.approx(
                target
            )

    def test_harness_summary_consistency(self, graph, workload):
        markov = MarkovTable(graph, h=2)
        estimators = {
            "max-hop-max": OptimisticEstimator(markov),
            "rdf3x": Rdf3xDefaultEstimator(graph),
        }
        result = run_harness(workload, estimators)
        manual = summarize(result.estimates["max-hop-max"])
        assert result.summary("max-hop-max").median == manual.median

    def test_sketch_against_plain(self, graph, workload):
        query = workload[0]
        plain = optimistic_sketch_estimate(graph, query.pattern, budget=1, h=2)
        sketched = optimistic_sketch_estimate(graph, query.pattern, budget=4, h=2)
        assert plain >= 0 and sketched >= 0
        direct = molp_sketch_bound(graph, query.pattern, budget=1, h=1)
        partitioned = molp_sketch_bound(graph, query.pattern, budget=4, h=1)
        assert partitioned <= direct + 1e-9
        assert partitioned >= query.true_cardinality - 1e-6


class TestCyclicPipeline:
    def test_ocr_workflow(self, graph):
        instances = cyclic_workload(graph, per_template=1, seed=29)
        markov = MarkovTable(graph, h=3)
        rates = CycleClosingRates(graph, seed=3, samples=200)
        for query in instances[:3]:
            plain_ceg = build_ceg_o(query.pattern, markov)
            ocr_ceg = build_ceg_ocr(query.pattern, markov, rates)
            plain = estimate_from_ceg(plain_ceg, "max", "max")
            closed = estimate_from_ceg(ocr_ceg, "max", "max")
            assert plain >= 0 and closed >= 0


class TestPlannerPipeline:
    def test_plans_execute_to_true_count(self, graph, workload):
        markov = MarkovTable(graph, h=2)
        estimator = OptimisticEstimator(markov)
        for query in workload[:3]:
            plan = optimize_left_deep(query.pattern, estimator.estimate)
            run = execute_plan(graph, query.pattern, plan.order)
            if not run.aborted:
                assert run.final_cardinality == pytest.approx(
                    query.true_cardinality
                )

    def test_wanderjoin_converges_on_workload_query(self, graph, workload):
        query = workload[0]
        wj = WanderJoinEstimator(graph, seed=31)
        runs = [wj.estimate(query.pattern, ratio=1.0) for _ in range(150)]
        mean = sum(runs) / len(runs)
        # Unbiasedness: within a loose factor given the variance.
        assert mean == pytest.approx(query.true_cardinality, rel=0.8)


class TestStatisticsSharing:
    def test_markov_shared_across_estimators(self, graph, workload):
        markov = MarkovTable(graph, h=2)
        estimators = all_nine_estimators(markov)
        for estimator in estimators.values():
            estimator.estimate(workload[0].pattern)
        entries_after_first = markov.num_entries
        for estimator in estimators.values():
            estimator.estimate(workload[0].pattern)
        assert markov.num_entries == entries_after_first

    def test_degree_catalog_shared_across_queries(self, graph, workload):
        molp = MolpEstimator(graph, h=1)
        for query in workload[:3]:
            bound = molp.estimate(query.pattern)
            assert bound >= query.true_cardinality - 1e-6

    def test_truth_recount_matches_workload(self, graph, workload):
        for query in workload[:3]:
            assert count_pattern(graph, query.pattern) == pytest.approx(
                query.true_cardinality
            )
