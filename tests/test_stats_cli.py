"""The ``repro stats`` CLI and ``repro batch --stats-dir`` serving path.

End-to-end contract (the ISSUE's acceptance gate): ``repro stats build``
followed by ``repro batch --stats-dir`` produces estimates bit-identical
to the graph-backed ``repro batch``, and invalid requests exit 2 with a
named reason.
"""

import json

import pytest

from repro.cli import main

QUERIES = [
    "a -[A]-> b -[B]-> c",
    "x -[B]-> y -[C]-> z",
    "s -[A]-> t",
]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("stats") / "example"
    code = main(
        ["stats", "build", "--dataset", "example", "--out", str(directory)]
    )
    assert code == 0
    return directory


class TestStatsBuild:
    def test_build_summary_json(self, capsys, tmp_path):
        out_dir = tmp_path / "artifact"
        code, out, _ = run_cli(
            capsys, "stats", "build", "--dataset", "example",
            "--out", str(out_dir),
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["dataset"] == "example"
        assert summary["mode"] == "full"
        assert summary["complete"] is True
        assert summary["markov_entries"] > 0
        assert (out_dir / "manifest.json").exists()
        # Builds default to the mmap-able flat layout: one aligned NPZ
        # of catalog arrays plus its metadata, no per-catalog JSON.
        assert (out_dir / "catalogs.npz").exists()
        assert (out_dir / "catalogs.meta.json").exists()
        assert not (out_dir / "markov.json").exists()

    def test_inspect_reports_manifest_and_sizes(self, capsys, artifact_dir):
        code, out, _ = run_cli(capsys, "stats", "inspect", str(artifact_dir))
        assert code == 0
        report = json.loads(out)
        assert report["dataset_name"] == "example"
        assert report["format_version"] == 1
        assert report["total_bytes"] > 0
        assert "catalogs.npz" in report["files"]
        assert report["mmap_capable"] is True

    def test_inspect_per_catalog_sizes_check_the_sub_mb_claim(
        self, capsys, artifact_dir
    ):
        # Satellite: operators can sanity-check the paper's "sub-MB
        # tables" claim per dataset from the inspect report alone.
        code, out, _ = run_cli(capsys, "stats", "inspect", str(artifact_dir))
        assert code == 0
        report = json.loads(out)
        sizes = report["catalogs_sizes"]
        assert {"manifest", "markov", "degrees"} <= set(sizes)
        for catalog, entry in sizes.items():
            # Array-backed catalogs share one file; their own rows carry
            # mapped_bytes instead (bytes counted once under "catalogs").
            assert entry["bytes"] > 0 or entry["mapped_bytes"] > 0, catalog
            if "human" in entry:
                assert entry["human"].split()[1] in ("B", "kB", "MB")
        assert sizes["markov"]["entries"] > 0
        assert report["total_bytes"] == sum(
            entry["bytes"] for entry in sizes.values()
        )
        flat = report["flat"]
        assert flat["markov"]["mapped_bytes"] > 0
        assert flat["degrees"]["mapped_bytes"] > 0
        assert report["total_human"].split()[1] in ("B", "kB", "MB")
        assert report["sub_mb"] is (report["total_bytes"] < 1_000_000)
        assert report["sub_mb"] is True  # the example artifact is tiny

    def test_inspect_missing_dir_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "stats", "inspect", str(tmp_path / "nope")
        )
        assert code == 2
        assert "does not exist" in err

    def test_unknown_subcommand_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "stats", "frobnicate")
        assert code == 2
        assert "build | inspect" in err

    def test_cycle_rates_require_a_workload(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "stats", "build", "--dataset", "example",
            "--cycle-rates", "--out", str(tmp_path / "x"),
        )
        assert code == 2
        assert "workload" in err


class TestBatchFromStatsDir:
    def test_estimates_bit_identical_to_graph_backed(
        self, capsys, artifact_dir
    ):
        argv = []
        for query in QUERIES:
            argv += ["-q", query]
        argv += ["-e", "all9", "-e", "MOLP"]
        code, out, _ = run_cli(
            capsys, "batch", "--stats-dir", str(artifact_dir), *argv
        )
        assert code == 0
        served = json.loads(out)
        code, out, _ = run_cli(
            capsys, "batch", "--dataset", "example", "--h", "2",
            "--molp-h", "2", *argv
        )
        assert code == 0
        graph_backed = json.loads(out)
        for stored, fresh in zip(served["results"], graph_backed["results"]):
            assert stored["estimates"] == fresh["estimates"]
            assert stored["errors"] == fresh["errors"] == {}
        assert served["dataset"] == "example"
        assert served["stats_dir"] == str(artifact_dir)
        assert served["graph"]["vertices"] == 13

    def test_sketch_spec_rejected(self, capsys, artifact_dir):
        code, _, err = run_cli(
            capsys, "batch", "--stats-dir", str(artifact_dir),
            "-q", "a -[A]-> b", "-e", "MOLP-sketch4",
        )
        assert code == 2
        assert "partitions base relations" in err

    def test_ocr_spec_without_stored_rates_rejected(self, capsys, artifact_dir):
        code, _, err = run_cli(
            capsys, "batch", "--stats-dir", str(artifact_dir),
            "-q", "a -[A]-> b", "-e", "max-hop-max+ocr",
        )
        assert code == 2
        assert "cycle rates" in err

    def test_cycle_rates_flag_conflicts_with_stats_dir(
        self, capsys, artifact_dir
    ):
        code, _, err = run_cli(
            capsys, "batch", "--stats-dir", str(artifact_dir),
            "--cycle-rates", "-q", "a -[A]-> b",
        )
        assert code == 2
        assert "conflicts" in err

    def test_missing_artifact_dir_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "batch", "--stats-dir", str(tmp_path / "nope"),
            "-q", "a -[A]-> b",
        )
        assert code == 2
        assert "does not exist" in err
