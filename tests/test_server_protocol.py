"""Wire protocol: schema checks, typed error codes, float fidelity."""

import json
import math

import pytest

from repro.server import protocol
from repro.server.protocol import ProtocolError, parse_request


def estimate_payload(**overrides):
    payload = {
        "v": protocol.PROTOCOL_VERSION,
        "verb": "estimate",
        "tenant": "example",
        "query": "a -[A]-> b",
    }
    payload.update(overrides)
    return json.dumps(payload)


class TestParseRequest:
    def test_estimate_defaults(self):
        request = parse_request(estimate_payload())
        assert request.verb == "estimate"
        assert request.tenant == "example"
        assert request.query == "a -[A]-> b"
        assert request.estimators == ("max-hop-max",)
        assert request.deadline_ms is None
        assert request.id is None

    def test_estimate_full(self):
        request = parse_request(
            estimate_payload(
                id=17, estimators=["MOLP", "all-hops-avg"], deadline_ms=250
            )
        )
        assert request.id == 17
        assert request.estimators == ("MOLP", "all-hops-avg")
        assert request.deadline_ms == 250.0

    def test_bytes_input_accepted(self):
        request = parse_request(estimate_payload().encode("utf-8"))
        assert request.tenant == "example"

    def test_reload(self):
        request = parse_request(
            json.dumps(
                {
                    "v": 1,
                    "verb": "reload",
                    "tenant": "example",
                    "path": "stats/v2",
                    "allow_fingerprint_change": True,
                }
            )
        )
        assert request.verb == "reload"
        assert request.path == "stats/v2"
        assert request.allow_fingerprint_change is True

    def test_reload_path_optional(self):
        request = parse_request(
            json.dumps({"v": 1, "verb": "reload", "tenant": "example"})
        )
        assert request.path is None
        assert request.allow_fingerprint_change is False

    @pytest.mark.parametrize("verb", ["stats", "ping", "shutdown"])
    def test_nullary_verbs(self, verb):
        request = parse_request(json.dumps({"v": 1, "verb": verb, "id": "x"}))
        assert request.verb == verb
        assert request.id == "x"


class TestParseErrors:
    def error_code(self, text):
        with pytest.raises(ProtocolError) as info:
            parse_request(text)
        return info.value.code

    def test_bad_json(self):
        assert self.error_code("{nope") is protocol.INVALID_REQUEST

    def test_non_object(self):
        assert self.error_code("[1, 2]") is protocol.INVALID_REQUEST

    def test_missing_version(self):
        payload = json.dumps({"verb": "ping"})
        assert self.error_code(payload) is protocol.UNSUPPORTED_VERSION

    def test_wrong_version(self):
        payload = json.dumps({"v": 99, "verb": "ping"})
        assert self.error_code(payload) is protocol.UNSUPPORTED_VERSION

    def test_unknown_verb(self):
        payload = json.dumps({"v": 1, "verb": "frobnicate"})
        assert self.error_code(payload) is protocol.UNKNOWN_VERB

    def test_estimate_needs_tenant(self):
        payload = json.dumps({"v": 1, "verb": "estimate", "query": "a -[A]-> b"})
        assert self.error_code(payload) is protocol.INVALID_REQUEST

    def test_estimate_needs_query(self):
        payload = json.dumps({"v": 1, "verb": "estimate", "tenant": "t"})
        assert self.error_code(payload) is protocol.INVALID_REQUEST

    def test_estimators_must_be_nonempty_list(self):
        assert (
            self.error_code(estimate_payload(estimators=[]))
            is protocol.INVALID_REQUEST
        )
        assert (
            self.error_code(estimate_payload(estimators="MOLP"))
            is protocol.INVALID_REQUEST
        )
        assert (
            self.error_code(estimate_payload(estimators=[1]))
            is protocol.INVALID_REQUEST
        )

    def test_deadline_must_be_positive(self):
        assert (
            self.error_code(estimate_payload(deadline_ms=0))
            is protocol.INVALID_REQUEST
        )
        assert (
            self.error_code(estimate_payload(deadline_ms=-5))
            is protocol.INVALID_REQUEST
        )

    def test_invalid_utf8(self):
        assert self.error_code(b"\xff\xfe{}") is protocol.INVALID_REQUEST


class TestErrorTaxonomy:
    """Wire codes extend the repro batch exit-code contract."""

    def test_invalid_request_family_exits_2(self):
        for code in [
            protocol.INVALID_REQUEST,
            protocol.UNSUPPORTED_VERSION,
            protocol.UNKNOWN_VERB,
            protocol.UNKNOWN_TENANT,
            protocol.UNKNOWN_ESTIMATOR,
            protocol.MALFORMED_QUERY,
            protocol.UNSUPPORTED_SPEC,
            protocol.RELOAD_FAILED,
        ]:
            assert code.exit_code == 2

    def test_estimation_failure_family_exits_1(self):
        assert protocol.ESTIMATION_FAILED.exit_code == 1
        assert protocol.INTERNAL_ERROR.exit_code == 1

    def test_transient_family_exits_3(self):
        for code in [
            protocol.OVERLOADED,
            protocol.DEADLINE_EXCEEDED,
            protocol.SHUTTING_DOWN,
        ]:
            assert code.exit_code == 3

    def test_registry_is_complete_and_keyed_by_code(self):
        for name, code in protocol.ERROR_CODES.items():
            assert name == code.code

    def test_error_response_shape(self):
        response = protocol.error_response(
            "id-1", protocol.OVERLOADED, "try later"
        )
        assert response["ok"] is False
        assert response["id"] == "id-1"
        assert response["error"] == {
            "code": "overloaded",
            "message": "try later",
            "exit_code": 3,
        }


class TestFraming:
    def test_encode_decode_roundtrip(self):
        payload = protocol.ok_response(7, {"estimates": {"MOLP": 12.5}})
        line = protocol.encode_line(payload)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_line(line) == payload

    def test_floats_roundtrip_bit_identical(self):
        # The bit-identity guarantee of the serving tier rests on JSON
        # emitting the shortest round-tripping repr of a double.
        values = [
            0.1 + 0.2,
            1.0 / 3.0,
            math.pi * 1e17,
            2.2250738585072014e-308,
            5e-324,
            123456789.123456789,
            float("inf"),
        ]
        for value in values:
            result = protocol.decode_line(
                protocol.encode_line(protocol.ok_response(None, {"x": value}))
            )["result"]["x"]
            assert result == value
            if not math.isinf(value):
                assert math.frexp(result) == math.frexp(value)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"not json\n")
