"""Property: caching — and persistence — are bitwise-invisible.

For randomized workloads over :mod:`repro.graph.generators`, every
estimate an :class:`EstimationSession` batch produces must be *exactly*
(``==`` on floats, no tolerance) the value a fresh single-query
:class:`OptimisticEstimator` / :class:`MolpEstimator` computes for the
same pattern — including renamed duplicates, which the session serves
from one shared cache entry while the fresh estimators recompute from
scratch.  The same holds for a session backed by a bulk-built,
saved-and-reloaded (graph-free) :class:`~repro.stats.StatisticsStore`:
offline statistics never change a served value.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.markov import MarkovTable
from repro.core.estimators import MolpEstimator, OptimisticEstimator
from repro.datasets.workloads import acyclic_workload, cyclic_workload
from repro.graph.generators import generate_graph
from repro.service import EstimationSession
from repro.service.session import OPTIMISTIC_NAMES, EstimatorSpec
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics

_GRAPHS = {}
_POOLS = {}
_STORES = {}


def _graph(seed: int):
    if seed not in _GRAPHS:
        _GRAPHS[seed] = generate_graph(
            num_vertices=80,
            num_edges=420,
            num_labels=5,
            seed=seed,
            closure=0.3,
        )
    return _GRAPHS[seed]


def _pattern_pool(seed: int):
    """Template instances sampled from the graph (non-empty by design)."""
    if seed not in _POOLS:
        graph = _graph(seed)
        base = acyclic_workload(graph, per_template=1, seed=seed, sizes=(6,))
        base += cyclic_workload(graph, per_template=1, seed=seed)
        _POOLS[seed] = [query.pattern for query in base]
    return _POOLS[seed]


def _renamed(pattern, rng: random.Random):
    names = list(pattern.variables)
    fresh = [f"w{rng.randrange(10_000)}_{i}" for i in range(len(names))]
    return pattern.rename(dict(zip(names, fresh)))


def _loaded_store(seed: int, tmp_path_factory) -> StatisticsStore:
    """A graph-free store round-tripped through disk, one per graph."""
    if seed not in _STORES:
        graph = _graph(seed)
        store = build_statistics(
            graph, StatsBuildConfig(h=2), workload=_pattern_pool(seed)
        )
        directory = tmp_path_factory.mktemp(f"store{seed}")
        store.save(directory)
        _STORES[seed] = StatisticsStore.load(directory)
    return _STORES[seed]


@settings(max_examples=12, deadline=None)
@given(
    graph_seed=st.sampled_from([3, 17]),
    rename_seed=st.integers(min_value=0, max_value=2**31 - 1),
    subset=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                    max_size=6),
    workers=st.sampled_from([1, 4]),
)
def test_batch_equals_fresh_estimators(graph_seed, rename_seed, subset,
                                       workers):
    graph = _graph(graph_seed)
    pool = _pattern_pool(graph_seed)
    rng = random.Random(rename_seed)
    # A workload with repeated shapes: chosen patterns plus renamed copies.
    patterns = []
    for pick in subset:
        pattern = pool[pick % len(pool)]
        patterns.append(pattern)
        patterns.append(_renamed(pattern, rng))
    specs = [EstimatorSpec.from_name(name) for name in OPTIMISTIC_NAMES]
    specs.append(EstimatorSpec.from_name("MOLP"))

    session = EstimationSession(graph, h=2, molp_h=2)
    batch = session.estimate_batch(patterns, specs=specs, max_workers=workers)
    assert batch.ok

    markov = MarkovTable(graph, h=2)
    for index, pattern in enumerate(patterns):
        for spec in specs:
            served = batch.item(index, spec.name).estimate
            if spec.kind == "molp":
                fresh = MolpEstimator(graph, h=2).estimate(pattern)
            else:
                fresh = OptimisticEstimator(
                    markov, spec.path_length, spec.aggregator
                ).estimate(pattern)
            assert served == fresh, (
                f"cached {spec.name} estimate for query {index} drifted: "
                f"{served!r} != fresh {fresh!r}"
            )


@settings(max_examples=10, deadline=None)
@given(
    graph_seed=st.sampled_from([3, 17]),
    rename_seed=st.integers(min_value=0, max_value=2**31 - 1),
    subset=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                    max_size=5),
)
def test_loaded_store_session_equals_fresh_estimators(
    graph_seed, rename_seed, subset, tmp_path_factory
):
    """A graph-free loaded store serves exactly the fresh values."""
    graph = _graph(graph_seed)
    pool = _pattern_pool(graph_seed)
    store = _loaded_store(graph_seed, tmp_path_factory)
    assert store.graph_free
    rng = random.Random(rename_seed)
    patterns = []
    for pick in subset:
        pattern = pool[pick % len(pool)]
        patterns.append(pattern)
        patterns.append(_renamed(pattern, rng))
    specs = [EstimatorSpec.from_name(name) for name in OPTIMISTIC_NAMES]
    specs.append(EstimatorSpec.from_name("MOLP"))

    batch = store.session().estimate_batch(patterns, specs=specs)
    assert batch.ok

    markov = MarkovTable(graph, h=2)
    for index, pattern in enumerate(patterns):
        for spec in specs:
            served = batch.item(index, spec.name).estimate
            if spec.kind == "molp":
                fresh = MolpEstimator(graph, h=2).estimate(pattern)
            else:
                fresh = OptimisticEstimator(
                    markov, spec.path_length, spec.aggregator
                ).estimate(pattern)
            assert served == fresh, (
                f"store-served {spec.name} estimate for query {index} "
                f"drifted: {served!r} != fresh {fresh!r}"
            )


@settings(max_examples=8, deadline=None)
@given(
    rename_seed=st.integers(min_value=0, max_value=2**31 - 1),
    pick=st.integers(min_value=0, max_value=10**6),
)
def test_renamed_duplicates_hit_cache_and_match(rename_seed, pick):
    """The cached entry a renamed duplicate lands on serves its exact value."""
    graph = _graph(3)
    pool = _pattern_pool(3)
    pattern = pool[pick % len(pool)]
    rng = random.Random(rename_seed)
    twin = _renamed(pattern, rng)

    session = EstimationSession(graph, h=2)
    first = session.estimate(pattern, "all-hops-avg")
    before = session.stats().estimates.hits
    second = session.estimate(twin, "all-hops-avg")
    assert session.stats().estimates.hits == before + 1
    assert second == first
    markov = MarkovTable(graph, h=2)
    fresh = OptimisticEstimator(markov, "all", "avg").estimate(twin)
    assert second == fresh
