"""Tests for cycle-closing-rate sampling (§4.3) and the pattern sampler."""

import pytest

from repro.catalog import CycleClosingRates
from repro.engine import CombinedAdjacency, PatternSampler, count_pattern
from repro.graph import LabeledDiGraph
from repro.query import templates
from repro.query.shape import cycles


@pytest.fixture(scope="module")
def ring_graph() -> LabeledDiGraph:
    """A directed ring 0->1->...->19->0 where every 4th hop closes.

    Labels alternate P (path) and C (chord): C edges close one of every
    two 2-paths, so the closing rate of P-P pairs by C is about 0.5.
    """
    n = 20
    triples = [(i, (i + 1) % n, "P") for i in range(n)]
    triples += [(i, (i + 2) % n, "C") for i in range(0, n, 2)]
    return LabeledDiGraph.from_triples(triples, num_vertices=n)


class TestCombinedAdjacency:
    def test_out_slice(self, tiny_graph):
        adjacency = CombinedAdjacency(tiny_graph)
        dsts, labs = adjacency.out_slice(0)
        assert sorted(int(d) for d in dsts) == [2, 3]

    def test_in_slice(self, tiny_graph):
        adjacency = CombinedAdjacency(tiny_graph)
        srcs, _ = adjacency.in_slice(6)
        assert sorted(int(s) for s in srcs) == [4, 5]

    def test_labels_between(self, tiny_graph):
        adjacency = CombinedAdjacency(tiny_graph)
        assert adjacency.labels_between(0, 2) == ["A"]
        assert adjacency.labels_between(2, 0) == []

    def test_random_edge_in_graph(self, tiny_graph):
        import random

        adjacency = CombinedAdjacency(tiny_graph)
        rng = random.Random(0)
        for _ in range(20):
            u, v, label = adjacency.random_edge(rng)
            assert tiny_graph.relation(label).has_edge(u, v, 8)


class TestPatternSampler:
    def test_sampled_instance_is_nonempty(self, medium_random_graph):
        sampler = PatternSampler(medium_random_graph, seed=3)
        for template in (templates.path(3), templates.star(3)):
            instance = sampler.sample_instance(template)
            assert instance is not None
            assert count_pattern(medium_random_graph, instance) >= 1

    def test_cyclic_instance_nonempty(self, medium_random_graph):
        sampler = PatternSampler(medium_random_graph, seed=9)
        instance = sampler.sample_instance(templates.triangle(), max_tries=500)
        if instance is None:
            pytest.skip("graph has no triangle")
        assert count_pattern(medium_random_graph, instance) >= 1

    def test_impossible_template_returns_none(self, tiny_graph):
        sampler = PatternSampler(tiny_graph, seed=0)
        # tiny_graph has only one 4-cycle family; a 9-clique is hopeless.
        instance = sampler.sample_instance(templates.clique(5), max_tries=30)
        assert instance is None or count_pattern(tiny_graph, instance) >= 1

    def test_deterministic_given_seed(self, medium_random_graph):
        a = PatternSampler(medium_random_graph, seed=4).sample_instance(
            templates.path(3)
        )
        b = PatternSampler(medium_random_graph, seed=4).sample_instance(
            templates.path(3)
        )
        assert a == b


class TestCycleClosingRates:
    def test_rate_in_unit_interval(self, ring_graph):
        rates = CycleClosingRates(ring_graph, seed=0, samples=500)
        pattern = templates.cycle(3).with_labels(["P", "P", "C"])
        # Closing the C atom: the open path is two P hops.
        cycle = cycles(pattern)[0]
        value = rates.rate(pattern, cycle, closing_index=2)
        assert value is not None
        assert 0.0 < value <= 1.0

    def test_known_rate_on_ring(self, ring_graph):
        """Half of all P-P 2-paths are closed by a C chord."""
        rates = CycleClosingRates(ring_graph, seed=1, samples=2000)
        pattern = templates.cycle(3).with_labels(["P", "P", "C"])
        cycle = cycles(pattern)[0]
        # The closing atom C runs v2 -> v0 in cycle(3): P path v0->v1->v2
        # then closing v2->v0?  cycle(3) = v0->v1, v1->v2, v2->v0 with
        # labels P, P, C: C closes from v2 back to v0.  The chords run
        # i -> i+2 = start -> end, so orient the query accordingly.
        from repro.query import QueryPattern

        oriented = QueryPattern(
            [("v0", "v1", "P"), ("v1", "v2", "P"), ("v0", "v2", "C")]
        )
        cycle = cycles(oriented)[0]
        value = rates.rate(oriented, cycle, closing_index=2)
        assert value == pytest.approx(0.5, abs=0.1)

    def test_rate_cached(self, ring_graph):
        rates = CycleClosingRates(ring_graph, seed=0, samples=100)
        pattern = templates.cycle(4).with_labels(["P", "P", "P", "C"])
        cycle = cycles(pattern)[0]
        rates.rate(pattern, cycle, closing_index=3)
        entries = rates.num_entries
        rates.rate(pattern, cycle, closing_index=3)
        assert rates.num_entries == entries

    def test_missing_labels_give_none_or_zero(self, ring_graph):
        rates = CycleClosingRates(ring_graph, seed=0, samples=50)
        pattern = templates.cycle(3).with_labels(["P", "P", "Z"])
        cycle = cycles(pattern)[0]
        value = rates.rate(pattern, cycle, closing_index=2)
        # Closing label absent: either no completed walk (None) or a
        # floored tiny probability.
        assert value is None or value <= 0.5
