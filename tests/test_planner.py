"""Tests for the DP join-order optimizer and plan executor."""

import pytest

from repro.engine import count_pattern
from repro.errors import PlanningError
from repro.planner import execute_plan, optimize_left_deep
from repro.query import QueryPattern, parse_pattern, templates


class TestOptimizer:
    def test_single_atom(self, tiny_graph):
        query = parse_pattern("x -[A]-> y")
        plan = optimize_left_deep(query, lambda p: 1.0)
        assert plan.order == [0]

    def test_order_is_permutation(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        plan = optimize_left_deep(query, lambda p: float(len(p)))
        assert sorted(plan.order) == [0, 1, 2]

    def test_order_is_connected_prefix(self, tiny_graph):
        query = templates.fork(2, 2)
        plan = optimize_left_deep(query, lambda p: float(len(p)))
        bound: set[str] = set()
        for position, index in enumerate(plan.order):
            edge = query.edges[index]
            if position > 0:
                assert edge.src in bound or edge.dst in bound
            bound.update(edge.variables())

    def test_estimates_steer_the_order(self, tiny_graph):
        """Making atom 2 look tiny should make it the starting atom."""
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")

        def skewed(pattern: QueryPattern) -> float:
            if len(pattern) == 1 and pattern.edges[0].label == "C":
                return 0.001
            return 1000.0 ** len(pattern)

        plan = optimize_left_deep(query, skewed)
        assert query.edges[plan.order[0]].label == "C"

    def test_estimator_failure_tolerated(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c")

        def broken(pattern: QueryPattern) -> float:
            raise RuntimeError("boom")

        plan = optimize_left_deep(query, broken)
        assert sorted(plan.order) == [0, 1]

    def test_too_many_atoms_rejected(self):
        big = templates.path(17)
        with pytest.raises(PlanningError):
            optimize_left_deep(big, lambda p: 1.0)


class TestExecutor:
    def test_final_cardinality_matches_counter(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        truth = count_pattern(tiny_graph, query)
        result = execute_plan(tiny_graph, query, [0, 1, 2])
        assert result.final_cardinality == pytest.approx(truth)

    def test_any_order_same_final_count(self, medium_random_graph):
        labels = list(medium_random_graph.labels)
        query = templates.path(3).with_labels(labels[:3])
        truth = count_pattern(medium_random_graph, query)
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0]):
            result = execute_plan(medium_random_graph, query, order)
            assert result.final_cardinality == pytest.approx(truth), order

    def test_cyclic_query_execution(self, small_random_graph):
        from repro.engine import PatternSampler

        sampler = PatternSampler(small_random_graph, seed=11)
        instance = sampler.sample_instance(templates.triangle(), max_tries=300)
        if instance is None:
            pytest.skip("no triangle instance")
        truth = count_pattern(small_random_graph, instance)
        result = execute_plan(small_random_graph, instance, [0, 1, 2])
        assert result.final_cardinality == pytest.approx(truth)

    def test_cost_counts_intermediates(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c")
        result = execute_plan(tiny_graph, query, [0, 1])
        # |A| = 3 rows, then 5 joined rows.
        assert result.intermediate_tuples == pytest.approx(8.0)

    def test_bad_order_rejected(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c")
        with pytest.raises(PlanningError):
            execute_plan(tiny_graph, query, [0, 0])

    def test_abort_on_blowup(self, medium_random_graph):
        labels = list(medium_random_graph.labels)
        query = templates.star(4).with_labels(
            [labels[0], labels[0], labels[1], labels[1]]
        )
        result = execute_plan(medium_random_graph, query, [0, 1, 2, 3], max_rows=10)
        assert result.aborted
        assert result.intermediate_tuples >= 10

    def test_better_estimates_do_not_hurt(self, medium_random_graph):
        """An exact-cardinality optimizer's plan is never worse than the
        worst plan (sanity of the Fig-15 mechanism)."""
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.fork(1, 2).with_labels(labels[:3])
        exact_plan = optimize_left_deep(
            query, lambda p: count_pattern(graph, p)
        )
        exact_cost = execute_plan(graph, query, exact_plan.order).cost
        from itertools import permutations

        costs = []
        for order in permutations(range(3)):
            try:
                costs.append(execute_plan(graph, query, list(order)).cost)
            except PlanningError:
                continue
        assert exact_cost <= max(costs) + 1e-9
