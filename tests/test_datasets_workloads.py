"""Tests for dataset presets and workload generators."""

import pytest

from repro.datasets import (
    DATASETS,
    acyclic_workload,
    cyclic_workload,
    dataset_table,
    gcare_acyclic_workload,
    gcare_cyclic_workload,
    job_like_workload,
    load_dataset,
    split_cyclic_by_cycle_size,
)
from repro.engine import count_pattern
from repro.errors import DatasetError
from repro.query.shape import has_only_triangles, is_acyclic


SCALE = 0.03  # tiny graphs for fast tests


class TestPresets:
    def test_six_datasets(self):
        assert set(DATASETS) == {
            "imdb", "yago", "dblp", "watdiv", "hetionet", "epinions",
        }

    def test_load_and_cache(self):
        a = load_dataset("hetionet", SCALE)
        b = load_dataset("hetionet", SCALE)
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_epinions_has_no_label_correlation_knob(self):
        assert DATASETS["epinions"].label_correlation == 0.0

    def test_dataset_table_shape(self):
        rows = dataset_table(SCALE)
        assert len(rows) == 6
        assert {"dataset", "domain", "|V|", "|E|", "|E. Labels|"} <= set(rows[0])

    def test_scale_shrinks(self):
        small = load_dataset("dblp", 0.02)
        large = load_dataset("dblp", 0.05)
        assert small.num_edges < large.num_edges


class TestWorkloads:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("hetionet", SCALE)

    def test_job_like_nonempty_truths(self, graph):
        workload = job_like_workload(graph, per_template=2, seed=1)
        assert workload
        for query in workload:
            assert query.true_cardinality > 0
            assert is_acyclic(query.pattern)

    def test_job_like_truths_are_exact(self, graph):
        workload = job_like_workload(graph, per_template=1, seed=2)
        for query in workload[:3]:
            assert count_pattern(graph, query.pattern) == pytest.approx(
                query.true_cardinality
            )

    def test_acyclic_covers_sizes(self, graph):
        workload = acyclic_workload(graph, per_template=1, seed=3, sizes=(6, 7))
        sizes = {len(q.pattern) for q in workload}
        assert sizes <= {6, 7}
        assert len(sizes) >= 1

    def test_cyclic_instances_are_cyclic(self, graph):
        workload = cyclic_workload(graph, per_template=2, seed=4)
        for query in workload:
            assert not is_acyclic(query.pattern)
            assert query.true_cardinality >= 1

    def test_gcare_acyclic(self, graph):
        workload = gcare_acyclic_workload(
            graph, per_template=1, seed=5, sizes=(3, 6)
        )
        assert workload
        assert all(is_acyclic(q.pattern) for q in workload)

    def test_gcare_cyclic(self, graph):
        workload = gcare_cyclic_workload(graph, per_template=1, seed=6)
        for query in workload:
            assert not is_acyclic(query.pattern)

    def test_determinism(self, graph):
        a = job_like_workload(graph, per_template=1, seed=9)
        b = job_like_workload(graph, per_template=1, seed=9)
        assert [q.pattern for q in a] == [q.pattern for q in b]

    def test_split_by_cycle_size(self, graph):
        workload = cyclic_workload(graph, per_template=2, seed=7)
        triangles, large = split_cyclic_by_cycle_size(workload, h=3)
        for query in triangles:
            assert has_only_triangles(query.pattern)
        for query in large:
            assert not has_only_triangles(query.pattern)
        assert len(triangles) + len(large) <= len(workload)
