"""Tests for the per-template breakdown driver."""

from repro.datasets import acyclic_workload
from repro.experiments import per_template_breakdown


class TestPerTemplateBreakdown:
    def test_groups_by_template(self, medium_random_graph):
        workload = acyclic_workload(
            medium_random_graph, per_template=1, seed=5, sizes=(6,)
        )
        rows, rendered = per_template_breakdown(
            medium_random_graph, workload, h=2,
            estimators=("max-hop-max", "min-hop-min"),
        )
        templates = {row["template"] for row in rows}
        assert templates <= {q.template for q in workload}
        assert "Per-template" in rendered

    def test_estimator_filter(self, medium_random_graph):
        workload = acyclic_workload(
            medium_random_graph, per_template=1, seed=5, sizes=(6,)
        )
        rows, _ = per_template_breakdown(
            medium_random_graph, workload, h=2,
            estimators=("max-hop-max",),
        )
        assert {row["estimator"] for row in rows} <= {"max-hop-max"}

    def test_summary_columns_present(self, medium_random_graph):
        workload = acyclic_workload(
            medium_random_graph, per_template=1, seed=5, sizes=(6,)
        )
        rows, _ = per_template_breakdown(
            medium_random_graph, workload, h=2
        )
        if rows:
            assert "mean(log q, -top10%)" in rows[0]
            assert "under%" in rows[0]
