"""Tests for q-error metrics, summaries, harness and reports."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments import (
    format_summaries,
    format_table,
    q_error,
    run_harness,
    signed_log_bar,
    signed_log_q,
    summarize,
)


class TestQError:
    def test_exact(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(5, 50) == q_error(50, 5) == 10.0

    def test_zero_truth_zero_estimate(self):
        assert q_error(0, 0) == 1.0

    def test_zero_estimate_nonzero_truth(self):
        assert q_error(0, 7) == float("inf")

    @given(
        st.floats(min_value=0.001, max_value=1e9),
        st.floats(min_value=0.001, max_value=1e9),
    )
    def test_at_least_one(self, estimate, truth):
        assert q_error(estimate, truth) >= 1.0


class TestSignedLogQ:
    def test_underestimate_negative(self):
        assert signed_log_q(1, 100) == pytest.approx(-2.0)

    def test_overestimate_positive(self):
        assert signed_log_q(100, 1) == pytest.approx(2.0)

    def test_exact_zero(self):
        assert signed_log_q(42, 42) == 0.0

    def test_infinite(self):
        assert signed_log_q(0, 5) == -math.inf


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0

    def test_all_exact(self):
        summary = summarize([(10, 10), (5, 5)])
        assert summary.median == 0.0
        assert summary.mean_q_error == 1.0
        assert summary.underestimated_fraction == 0.0

    def test_under_fraction(self):
        summary = summarize([(1, 10), (10, 1), (1, 100), (7, 7)])
        assert summary.underestimated_fraction == 0.5

    def test_trimmed_mean_drops_worst(self):
        # Nineteen perfect estimates and one catastrophic one: the
        # trimmed mean should ignore the outlier almost entirely.
        pairs = [(10, 10)] * 19 + [(10, 10**9)]
        summary = summarize(pairs)
        assert summary.trimmed_mean_log_q < 0.5

    def test_percentiles_ordered(self):
        pairs = [(2**i, 1) for i in range(8)]
        summary = summarize(pairs)
        assert summary.p25 <= summary.median <= summary.p75

    def test_infinite_clamped(self):
        summary = summarize([(0, 5)])
        assert summary.mean_q_error == 1e12
        assert summary.median == -12.0


class TestHarness:
    def test_runs_and_summarizes(self, tiny_graph):
        from repro.datasets.workloads import WorkloadQuery
        from repro.query import parse_pattern

        pattern = parse_pattern("x -[A]-> y")
        workload = [WorkloadQuery("q1", "t", pattern, 3.0)]
        result = run_harness(workload, {"const": lambda p: 3.0})
        assert result.summary("const").mean_q_error == 1.0
        assert result.mean_time_ms("const") >= 0.0

    def test_failure_drops_query(self, tiny_graph):
        from repro.datasets.workloads import WorkloadQuery
        from repro.errors import EstimationError
        from repro.query import parse_pattern

        pattern = parse_pattern("x -[A]-> y")
        workload = [WorkloadQuery("q1", "t", pattern, 3.0)]

        def broken(p):
            raise EstimationError("nope")

        result = run_harness(
            workload, {"ok": lambda p: 3.0, "broken": broken}
        )
        assert result.failures["broken"] == 1
        assert result.estimates["ok"] == []
        assert result.skipped_queries == ["q1"]

    def test_keep_on_failure(self, tiny_graph):
        from repro.datasets.workloads import WorkloadQuery
        from repro.errors import EstimationError
        from repro.query import parse_pattern

        pattern = parse_pattern("x -[A]-> y")
        workload = [WorkloadQuery("q1", "t", pattern, 3.0)]

        def broken(p):
            raise EstimationError("nope")

        result = run_harness(
            workload,
            {"ok": lambda p: 3.0, "broken": broken},
            drop_on_failure=False,
        )
        assert len(result.estimates["ok"]) == 1


class TestReport:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 2.5, "b": "y"}], "T")
        assert "T" in text
        assert "2.5" in text

    def test_empty_table(self):
        assert "(no rows)" in format_table([], "T")

    def test_format_summaries(self):
        summaries = {"e": summarize([(1, 1)])}
        text = format_summaries(summaries, "title")
        assert "e" in text and "title" in text

    def test_signed_log_bar(self):
        exact = signed_log_bar(0.0)
        assert "|" in exact and "#" not in exact
        over = signed_log_bar(3.0)
        under = signed_log_bar(-3.0)
        assert over.index("#") > over.index("|")
        assert under.index("#") < under.index("|")
        assert signed_log_bar(float("nan")).strip() == ""
