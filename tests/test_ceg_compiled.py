"""The array-compiled CEG must reproduce the reference path DP exactly.

``hop_statistics_compiled`` (the serving default behind
``estimate_from_ceg``) runs sequential ufunc accumulation over in-edges
sorted in the reference fold order, so every per-hop count/total/min/max
— including the order-sensitive float sums behind the ``avg``
aggregators — must equal :func:`repro.core.paths.hop_statistics` bit for
bit, on real ``CEG_O`` instances and on adversarial random DAGs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import MarkovTable
from repro.core import (
    CEG,
    build_ceg_o,
    compile_ceg,
    estimate_from_ceg,
    hop_statistics,
    hop_statistics_compiled,
)
from repro.query import QueryPattern, parse_pattern, templates


@st.composite
def random_dags(draw):
    """A layered DAG with float rates, parallel edges and dead ends."""
    layers = draw(st.integers(min_value=2, max_value=4))
    width = draw(st.integers(min_value=1, max_value=3))
    ceg = CEG(source=("n", 0, 0), target=("t",))
    names: list[list[tuple]] = []
    for layer in range(layers):
        row = [("n", layer, i) for i in range(width)]
        names.append(row)
        for node in row:
            ceg.add_node(node, rank=layer)
    ceg.add_node(("t",), rank=layers)
    for layer in range(layers - 1):
        for a in names[layer]:
            for b in names[layer + 1]:
                for _ in range(draw(st.integers(min_value=0, max_value=2))):
                    ceg.add_edge(
                        a, b, draw(st.floats(min_value=0.05, max_value=9.0))
                    )
    for a in names[-1]:
        if draw(st.booleans()):
            ceg.add_edge(a, ("t",), draw(st.floats(min_value=0.05, max_value=9.0)))
    # Skip-level edges exercise mixed hop counts at one vertex.
    if layers >= 3 and draw(st.booleans()):
        ceg.add_edge(
            names[0][0], names[2][0], draw(st.floats(min_value=0.05, max_value=9.0))
        )
    return ceg


def _assert_identical(ceg: CEG) -> None:
    reference = hop_statistics(ceg)
    compiled = hop_statistics_compiled(ceg.compiled())
    assert set(reference) == set(compiled)
    for hops, stats in reference.items():
        fast = compiled[hops]
        # Bitwise equality: == on floats, never approx.
        assert fast.count == stats.count
        assert fast.total == stats.total
        assert fast.minimum == stats.minimum
        assert fast.maximum == stats.maximum


class TestAgainstReferenceDp:
    @given(random_dags())
    @settings(max_examples=120, deadline=None)
    def test_random_dags_bit_identical(self, ceg):
        _assert_identical(ceg)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_estimates_bit_identical(self, ceg):
        if not hop_statistics(ceg):
            return
        for hop in ("max", "min", "all"):
            for aggr in ("max", "min", "avg"):
                assert estimate_from_ceg(
                    ceg, hop, aggr, compiled=True
                ) == estimate_from_ceg(ceg, hop, aggr, compiled=False)

    def test_real_ceg_o_instances(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        queries = [
            parse_pattern("a -[A]-> b -[B]-> c -[C]-> d"),
            templates.star(3).with_labels(["A", "B", "C"]),
            QueryPattern(
                [("a", "b", "A"), ("b", "c", "B"), ("c", "d", "C"), ("d", "a", "C")]
            ),
        ]
        for query in queries:
            _assert_identical(build_ceg_o(query, markov))


class TestCompiledStructure:
    def test_interning_roundtrip(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        ceg = build_ceg_o(parse_pattern("a -[A]-> b -[B]-> c"), markov)
        compiled = compile_ceg(ceg)
        assert compiled.num_nodes == len(ceg.nodes)
        assert compiled.num_edges == ceg.num_edges
        assert tuple(compiled.keys) == tuple(ceg.topological_order())
        assert compiled.keys[compiled.source] == ceg.source
        assert compiled.keys[compiled.target] == ceg.target
        # CSR shape: indptr delimits per-target in-edge slices.
        assert compiled.in_indptr[0] == 0
        assert compiled.in_indptr[-1] == compiled.num_edges
        for position in range(compiled.num_nodes):
            lo = compiled.in_indptr[position]
            hi = compiled.in_indptr[position + 1]
            assert (compiled.in_target[lo:hi] == position).all()

    def test_in_edges_sorted_for_bit_identity(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", rank=0)
        ceg.add_node("m1", rank=1)
        ceg.add_node("m2", rank=1)
        ceg.add_node("t", rank=2)
        ceg.add_edge("s", "m2", 2.0)
        ceg.add_edge("s", "m1", 3.0)
        ceg.add_edge("m2", "t", 5.0)
        ceg.add_edge("m1", "t", 7.0)
        compiled = ceg.compiled()
        lo, hi = (
            compiled.in_indptr[compiled.target],
            compiled.in_indptr[compiled.target + 1],
        )
        # The target's in-edges must come in source topological order
        # (m1 before m2), not insertion order.
        sources = [compiled.keys[i] for i in compiled.in_source[lo:hi]]
        assert sources == ["m1", "m2"]

    def test_cache_invalidation_on_mutation(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", rank=0)
        ceg.add_node("t", rank=2)
        ceg.add_edge("s", "t", 4.0)
        first = ceg.compiled()
        assert ceg.compiled() is first  # cached
        ceg.add_node("m", rank=1)
        ceg.add_edge("s", "m", 2.0)
        ceg.add_edge("m", "t", 3.0)
        second = ceg.compiled()
        assert second is not first
        assert second.num_edges == 3
        stats = hop_statistics_compiled(second)
        assert stats[1].total == 4.0
        assert stats[2].total == 6.0

    def test_unreachable_target(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", rank=0)
        ceg.add_node("t", rank=1)
        assert hop_statistics_compiled(ceg.compiled()) == {}
        assert hop_statistics(ceg) == {}

    def test_prune_invalidates(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", rank=0)
        ceg.add_node("dead", rank=1)
        ceg.add_node("t", rank=2)
        ceg.add_edge("s", "t", 4.0)
        ceg.add_edge("s", "dead", 9.0)
        before = ceg.compiled()
        ceg.prune_unreachable()
        after = ceg.compiled()
        assert after is not before
        assert after.num_nodes == 2


class TestZeroAndDegenerateRates:
    def test_zero_rate_edges(self):
        """Rate 0.0 must not poison min/max with inf*0 artifacts."""
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", rank=0)
        ceg.add_node("m", rank=1)
        ceg.add_node("t", rank=2)
        ceg.add_edge("s", "m", 0.0)
        ceg.add_edge("m", "t", 3.0)
        _assert_identical(ceg)
        assert estimate_from_ceg(ceg, "max", "max") == 0.0

    def test_single_hop(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", rank=0)
        ceg.add_node("t", rank=1)
        ceg.add_edge("s", "t", 1.5)
        stats = hop_statistics_compiled(ceg.compiled())
        assert stats == hop_statistics(ceg)
        assert stats[1].count == 1.0
        assert stats[1].total == 1.5


def test_service_estimates_identical_compiled_or_not(tiny_graph):
    """End-to-end: a session (compiled DP) equals the reference DP."""
    markov = MarkovTable(tiny_graph, h=3)
    query = parse_pattern("w -[A]-> x -[B]-> y -[C]-> z")
    ceg = build_ceg_o(query, markov)
    for hop in ("max", "min", "all"):
        for aggr in ("max", "min", "avg"):
            assert estimate_from_ceg(ceg, hop, aggr) == estimate_from_ceg(
                ceg, hop, aggr, compiled=False
            )
