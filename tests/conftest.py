"""Shared fixtures: small deterministic graphs and the running example."""

from __future__ import annotations

import pytest

from repro.graph import LabeledDiGraph, generate_graph


@pytest.fixture(scope="session")
def tiny_graph() -> LabeledDiGraph:
    """A hand-built 8-vertex graph with labels A, B, C used across tests.

    Layout (all edges directed left to right unless stated):

        0 -A-> 2, 1 -A-> 2, 0 -A-> 3
        2 -B-> 4, 2 -B-> 5, 3 -B-> 4
        4 -C-> 6, 5 -C-> 6, 4 -C-> 7, 6 -C-> 0   (C also closes a cycle)
    """
    triples = [
        (0, 2, "A"), (1, 2, "A"), (0, 3, "A"),
        (2, 4, "B"), (2, 5, "B"), (3, 4, "B"),
        (4, 6, "C"), (5, 6, "C"), (4, 7, "C"), (6, 0, "C"),
    ]
    return LabeledDiGraph.from_triples(triples, num_vertices=8)


@pytest.fixture(scope="session")
def small_random_graph() -> LabeledDiGraph:
    """A 60-vertex random graph, big enough for estimator smoke tests."""
    return generate_graph(
        num_vertices=60,
        num_edges=400,
        num_labels=5,
        seed=7,
        closure=0.3,
    )


@pytest.fixture(scope="session")
def medium_random_graph() -> LabeledDiGraph:
    """A 500-vertex random graph for integration tests."""
    return generate_graph(
        num_vertices=500,
        num_edges=3000,
        num_labels=12,
        seed=11,
        closure=0.25,
    )
