"""Tests for the Markov table (lazy small-join statistics)."""

import pytest

from repro.catalog import MarkovTable
from repro.errors import MissingStatisticError
from repro.query import QueryPattern, parse_pattern


class TestMarkovTable:
    def test_single_edge_cardinality(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        assert table.cardinality(parse_pattern("x -[A]-> y")) == 3
        assert table.cardinality(parse_pattern("x -[B]-> y")) == 3
        assert table.cardinality(parse_pattern("x -[C]-> y")) == 4

    def test_two_path_cardinality(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        assert table.cardinality(parse_pattern("x -[A]-> y -[B]-> z")) == 5

    def test_rejects_oversized_pattern(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        with pytest.raises(MissingStatisticError):
            table.cardinality(parse_pattern("w -[A]-> x -[B]-> y -[C]-> z"))

    def test_rejects_disconnected_pattern(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        pattern = QueryPattern([("a", "b", "A"), ("c", "d", "B")])
        with pytest.raises(MissingStatisticError):
            table.cardinality(pattern)

    def test_contains(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        assert table.contains(parse_pattern("x -[A]-> y -[B]-> z"))
        assert not table.contains(
            parse_pattern("w -[A]-> x -[B]-> y -[C]-> z")
        )

    def test_cache_shared_across_renamings(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        table.cardinality(parse_pattern("x -[A]-> y -[B]-> z"))
        entries = table.num_entries
        table.cardinality(parse_pattern("p -[A]-> q -[B]-> r"))
        assert table.num_entries == entries

    def test_h_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            MarkovTable(tiny_graph, h=0)

    def test_h3_stores_triangles(self, small_random_graph):
        table = MarkovTable(small_random_graph, h=3)
        labels = small_random_graph.labels
        triangle = QueryPattern(
            [("a", "b", labels[0]), ("b", "c", labels[1]), ("c", "a", labels[2])]
        )
        value = table.cardinality(triangle)
        assert value >= 0

    def test_markov_example_formula(self, tiny_graph):
        """§4.1 example: 3-path estimate = |AB| * |BC| / |B|.

        With this dataset: 5 * ? / 3 — the point is that the table
        supplies exactly the three ingredients of the formula.
        """
        table = MarkovTable(tiny_graph, h=2)
        ab = table.cardinality(parse_pattern("x -[A]-> y -[B]-> z"))
        bc = table.cardinality(parse_pattern("x -[B]-> y -[C]-> z"))
        b = table.cardinality(parse_pattern("x -[B]-> y"))
        estimate = ab * bc / b
        assert estimate > 0

    def test_size_estimate_grows(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        before = table.estimated_size_bytes()
        table.cardinality(parse_pattern("x -[A]-> y"))
        assert table.estimated_size_bytes() > before

    def test_prime(self, tiny_graph):
        table = MarkovTable(tiny_graph, h=2)
        table.prime([
            parse_pattern("x -[A]-> y"),
            parse_pattern("x -[A]-> y -[B]-> z"),
            parse_pattern("w -[A]-> x -[B]-> y -[C]-> z"),  # too big: skipped
        ])
        assert table.num_entries == 2
