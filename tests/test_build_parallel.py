"""Differential suite for the parallel, checkpointed statistics build.

The contract under test: for every ``jobs`` value, and across a
kill/resume cycle, ``build_statistics`` produces an artifact
byte-identical to the serial build.  Byte comparisons cover the catalog
files; ``manifest.json`` legitimately differs (timings, jobs, resume
provenance).  SumRDF is included too — all builds here run in one
process, where its bucketing is reproducible.
"""

from __future__ import annotations

import pytest

from repro.datasets.presets import load_dataset
from repro.datasets.workloads import acyclic_workload, cyclic_workload
from repro.errors import BuildInterrupted, DatasetError
from repro.stats.build import StatsBuildConfig, build_statistics

PRESETS = [("hetionet", 0.03), ("epinions", 0.03)]

COMPARED_FILES = [
    "catalogs.npz",
    "catalogs.meta.json",
    "characteristic_sets.json",
]


def _workload(graph):
    queries = acyclic_workload(graph, per_template=2, seed=7)
    queries += cyclic_workload(graph, per_template=1, seed=7)
    return [query.pattern for query in queries]


def _saved(store, directory):
    directory.mkdir(parents=True, exist_ok=True)
    store.save(directory)
    return {
        name: (directory / name).read_bytes()
        for name in COMPARED_FILES
        if (directory / name).exists()
    }


def _build_args(graph, mode):
    config = StatsBuildConfig(h=2, molp_h=2)
    workload = _workload(graph) if mode == "workload" else None
    return config, workload


@pytest.mark.parametrize("dataset,scale", PRESETS)
@pytest.mark.parametrize("mode", ["full", "workload"])
@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_build_byte_identical_to_serial(
    dataset, scale, mode, jobs, tmp_path
):
    graph = load_dataset(dataset, scale)
    config, workload = _build_args(graph, mode)
    serial = build_statistics(graph, config, workload=workload)
    parallel = build_statistics(graph, config, workload=workload, jobs=jobs)
    assert _saved(serial, tmp_path / "serial") == (
        _saved(parallel, tmp_path / f"jobs{jobs}")
    )
    assert parallel.manifest.build_config["jobs"] == jobs
    assert parallel.manifest.complete == serial.manifest.complete


@pytest.mark.parametrize("dataset,scale", PRESETS)
@pytest.mark.parametrize("mode", ["full", "workload"])
def test_resume_after_interrupt_byte_identical(dataset, scale, mode, tmp_path):
    graph = load_dataset(dataset, scale)
    config, workload = _build_args(graph, mode)
    serial = build_statistics(graph, config, workload=workload)

    out = tmp_path / "resumable"
    with pytest.raises(BuildInterrupted):
        build_statistics(
            graph, config, workload=workload,
            checkpoint_dir=out, stop_after_level=1, jobs=2,
        )
    checkpoint = out / "build_state" / "checkpoint.json"
    assert checkpoint.exists()

    resumed = build_statistics(
        graph, config, workload=workload,
        checkpoint_dir=out, resume=True, jobs=2,
    )
    assert not checkpoint.exists(), "checkpoint must be cleared on success"
    assert _saved(serial, tmp_path / "serial") == _saved(resumed, out)

    levels = resumed.manifest.build_config["levels"]
    flags = {entry["level"]: entry["resumed"] for entry in levels}
    assert flags[min(flags)] is True, "level 1 must come from the checkpoint"
    assert flags[max(flags)] is False, "later levels must be rebuilt live"


def test_resume_without_checkpoint_starts_fresh(tmp_path):
    graph = load_dataset("hetionet", 0.02)
    config = StatsBuildConfig(h=2, molp_h=2, baselines=False)
    fresh = build_statistics(
        graph, config, checkpoint_dir=tmp_path / "out", resume=True
    )
    assert fresh.markov.num_entries > 0
    assert all(
        not entry["resumed"]
        for entry in fresh.manifest.build_config["levels"]
    )


def test_checkpoint_refuses_different_dataset(tmp_path):
    config = StatsBuildConfig(h=2, molp_h=2, baselines=False)
    out = tmp_path / "out"
    with pytest.raises(BuildInterrupted):
        build_statistics(
            load_dataset("hetionet", 0.02), config,
            checkpoint_dir=out, stop_after_level=1,
        )
    with pytest.raises(DatasetError, match="mismatch"):
        build_statistics(
            load_dataset("epinions", 0.02), config,
            checkpoint_dir=out, resume=True,
        )


def test_checkpoint_refuses_different_config(tmp_path):
    out = tmp_path / "out"
    graph = load_dataset("hetionet", 0.02)
    with pytest.raises(BuildInterrupted):
        build_statistics(
            graph, StatsBuildConfig(h=2, molp_h=2, baselines=False),
            checkpoint_dir=out, stop_after_level=1,
        )
    with pytest.raises(DatasetError, match="mismatch"):
        build_statistics(
            graph, StatsBuildConfig(h=2, molp_h=1, baselines=False),
            checkpoint_dir=out, resume=True,
        )


def test_stop_after_level_requires_checkpoint_dir():
    graph = load_dataset("hetionet", 0.02)
    with pytest.raises(DatasetError, match="checkpoint_dir"):
        build_statistics(graph, stop_after_level=1)


def test_manifest_records_level_timings():
    graph = load_dataset("hetionet", 0.02)
    store = build_statistics(
        graph, StatsBuildConfig(h=2, molp_h=2, baselines=False), jobs=2
    )
    build = store.manifest.build_config
    levels = build["levels"]
    assert [entry["level"] for entry in levels] == [1, 2]
    assert all(entry["seconds"] >= 0 for entry in levels)
    assert all(entry["jobs"] == 2 for entry in levels)
    assert build["peak_level_width"] == max(e["stored"] for e in levels)
    assert build["jobs"] == 2


def test_estimates_identical_serial_vs_parallel():
    # Beyond artifact bytes: a session served from the parallel build
    # answers every estimator exactly like the serial one.
    from repro.query.parser import parse_pattern
    from repro.service.session import EstimatorSpec

    graph = load_dataset("hetionet", 0.03)
    config = StatsBuildConfig(h=2, molp_h=2)
    serial = build_statistics(graph, config)
    parallel = build_statistics(graph, config, jobs=3)
    label_a, label_b = graph.labels[0], graph.labels[1]
    queries = [
        parse_pattern(f"a -[{label_a}]-> b"),
        parse_pattern(f"a -[{label_a}]-> b -[{label_b}]-> c"),
    ]
    spec = EstimatorSpec.from_name("all-hops-max")
    session_a, session_b = serial.session(), parallel.session()
    for query in queries:
        a = session_a.estimate_one(query, spec)
        b = session_b.estimate_one(query, spec)
        assert a.ok == b.ok
        if a.ok:
            assert a.estimate == b.estimate
