"""Tests for the CEG_O builder (§4.2) and the nine optimistic estimators."""

import pytest

from repro.catalog import CycleClosingRates, MarkovTable
from repro.core import (
    OptimisticEstimator,
    PStarOracle,
    all_nine_estimators,
    build_ceg_o,
    build_ceg_ocr,
    distinct_estimates,
    estimate_from_ceg,
)
from repro.engine import count_pattern
from repro.errors import EstimationError
from repro.query import QueryPattern, parse_pattern, templates


class TestCegOStructure:
    def test_three_path_h2(self, tiny_graph):
        """h=2 on a 3-path: ∅ -> {01},{12} -> {012}."""
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        ceg = build_ceg_o(query, MarkovTable(tiny_graph, h=2))
        assert len(ceg.nodes) == 4
        assert ceg.num_edges == 4

    def test_markov_formula_reproduced(self, tiny_graph):
        """§4.1: 3-path estimate is |AB| * (|BC| / |B|) on a 2-path CEG.

        For the 2-edge query the CEG is a single hop from ∅, so the
        estimate equals the stored cardinality; for the 3-edge query the
        left path multiplies |AB| by |BC|/|B|.
        """
        markov = MarkovTable(tiny_graph, h=2)
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        ab = markov.cardinality(parse_pattern("a -[A]-> b -[B]-> c"))
        bc = markov.cardinality(parse_pattern("a -[B]-> b -[C]-> c"))
        b = markov.cardinality(parse_pattern("a -[B]-> b"))
        expected = ab * bc / b
        estimates = distinct_estimates(build_ceg_o(query, markov))
        assert any(e == pytest.approx(expected) for e in estimates)

    def test_whole_query_in_table_is_exact(self, tiny_graph):
        """h >= |Q| means the CEG collapses to the true cardinality."""
        query = parse_pattern("a -[A]-> b -[B]-> c")
        markov = MarkovTable(tiny_graph, h=2)
        ceg = build_ceg_o(query, markov)
        truth = count_pattern(tiny_graph, query)
        for heuristic in ("max", "min", "all"):
            assert estimate_from_ceg(ceg, heuristic, "max") == pytest.approx(truth)

    def test_single_atom_query(self, tiny_graph):
        query = parse_pattern("a -[A]-> b")
        ceg = build_ceg_o(query, MarkovTable(tiny_graph, h=2))
        assert estimate_from_ceg(ceg, "max", "max") == 3

    def test_disconnected_query_rejected(self, tiny_graph):
        query = QueryPattern([("a", "b", "A"), ("c", "d", "B")])
        with pytest.raises(EstimationError):
            build_ceg_o(query, MarkovTable(tiny_graph, h=2))

    def test_h3_has_short_and_long_hops(self, small_random_graph):
        """The fork Q5f with h=3 exposes both short- and long-hop paths."""
        labels = list(small_random_graph.labels[:5])
        query = templates.fork(2, 3).with_labels(labels)
        ceg = build_ceg_o(query, MarkovTable(small_random_graph, h=3))
        from repro.core import hop_statistics

        per_hop = hop_statistics(ceg)
        assert len(per_hop) >= 2  # at least two distinct path lengths

    def test_zero_cardinality_extension(self, tiny_graph):
        """A query using an absent label estimates 0, not an error."""
        query = parse_pattern("a -[A]-> b -[Z]-> c -[B]-> d")
        ceg = build_ceg_o(query, MarkovTable(tiny_graph, h=2))
        assert estimate_from_ceg(ceg, "max", "max") == 0.0

    def test_early_cycle_closing_rule(self, small_random_graph):
        """With h=3 and a triangle inside the query, successors of any
        vertex that can close the triangle must all close it."""

        labels = list(small_random_graph.labels[:4])
        query = QueryPattern([
            ("a", "b", labels[0]),
            ("b", "c", labels[1]),
            ("c", "a", labels[2]),
            ("c", "d", labels[3]),
        ])
        markov = MarkovTable(small_random_graph, h=3)
        ceg = build_ceg_o(query, markov)
        triangle = frozenset({0, 1, 2})
        for node in ceg.nodes:
            if not isinstance(node, frozenset) or triangle <= node:
                continue
            for edge in ceg.out_edges(node):
                successors_close = triangle <= edge.target
                other_closers = any(
                    triangle <= e.target for e in ceg.out_edges(node)
                )
                if other_closers:
                    assert successors_close


class TestNineEstimators:
    def test_all_nine_names(self, tiny_graph):
        estimators = all_nine_estimators(MarkovTable(tiny_graph, h=2))
        assert len(estimators) == 9
        assert "max-hop-max" in estimators
        assert "min-hop-min" in estimators
        assert "all-hops-avg" in estimators

    def test_estimator_orderings(self, medium_random_graph):
        """min-aggr <= avg-aggr <= max-aggr for any fixed hop class."""
        labels = list(medium_random_graph.labels)
        query = templates.star(4).with_labels(labels[:4])
        markov = MarkovTable(medium_random_graph, h=2)
        estimators = all_nine_estimators(markov)
        for hop in ("max-hop", "min-hop", "all-hops"):
            low = estimators[f"{hop}-min"].estimate(query)
            mid = estimators[f"{hop}-avg"].estimate(query)
            high = estimators[f"{hop}-max"].estimate(query)
            assert low <= mid + 1e-9 <= high + 1e-9

    def test_invalid_choices_rejected(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        with pytest.raises(ValueError):
            OptimisticEstimator(markov, path_length="bogus")
        with pytest.raises(ValueError):
            OptimisticEstimator(markov, aggregator="bogus")

    def test_name_property(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        assert OptimisticEstimator(markov, "max", "max").name == "max-hop-max"
        assert OptimisticEstimator(markov, "all", "avg").name == "all-hops-avg"

    def test_ceg_cache_reused(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        estimator = OptimisticEstimator(markov)
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        first = estimator.build_ceg(query)
        second = estimator.build_ceg(query)
        assert first is second


class TestPStar:
    def test_pstar_at_least_as_good(self, medium_random_graph):
        """P* q-error <= every fixed heuristic's q-error (it is an oracle)."""
        labels = list(medium_random_graph.labels)
        query = templates.path(4).with_labels(labels[:4])
        truth = count_pattern(medium_random_graph, query)
        if truth == 0:
            pytest.skip("empty instance")
        markov = MarkovTable(medium_random_graph, h=2)
        oracle = PStarOracle(markov)
        star = oracle.estimate(query, truth)

        def q_error(estimate):
            return max(estimate / truth, truth / estimate)

        star_q = q_error(star)
        for estimator in all_nine_estimators(markov).values():
            value = estimator.estimate(query)
            if value > 0:
                assert star_q <= q_error(value) + 1e-9


class TestCegOcr:
    def test_ocr_differs_on_large_cycle(self, medium_random_graph):
        """CEG_OCR must not use the broken-open-path weights."""
        from repro.engine import PatternSampler

        sampler = PatternSampler(medium_random_graph, seed=1)
        instance = sampler.sample_instance(templates.cycle(4))
        if instance is None:
            pytest.skip("no 4-cycle in the random graph")
        markov = MarkovTable(medium_random_graph, h=3)
        rates = CycleClosingRates(medium_random_graph, seed=5, samples=300)
        plain = estimate_from_ceg(
            build_ceg_o(instance, markov), "max", "max"
        )
        closed = estimate_from_ceg(
            build_ceg_ocr(instance, markov, rates), "max", "max"
        )
        # Closing rates are probabilities (< 1); estimates must shrink.
        assert closed < plain

    def test_ocr_matches_plain_on_acyclic(self, medium_random_graph):
        labels = list(medium_random_graph.labels)
        query = templates.path(4).with_labels(labels[:4])
        markov = MarkovTable(medium_random_graph, h=3)
        rates = CycleClosingRates(medium_random_graph, seed=5, samples=100)
        plain = estimate_from_ceg(build_ceg_o(query, markov), "max", "max")
        with_rates = estimate_from_ceg(
            build_ceg_ocr(query, markov, rates), "max", "max"
        )
        assert plain == pytest.approx(with_rates)
