"""Shared-memory statistics plane: publish/attach, refcounts, chaos.

The zero-copy tentpole's acceptance surface:

* one process publishes a statistics image, any number attach the same
  pages and serve floats bit-identical to a disk parse;
* the segment lifecycle is pid-refcounted: the last process out unlinks
  the ``/dev/shm`` entry, dead registrants (SIGKILL) are pruned, a dead
  builder's claim is stolen;
* a live fleet reloading a new artifact generation parses it from disk
  exactly once per host (the peers attach), a SIGKILL'd worker's
  restart attaches instead of re-parsing and serves bit-identical
  floats, and a drain leaves zero ``/dev/shm`` entries behind.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.presets import running_example_graph
from repro.errors import DatasetError
from repro.query.parser import parse_pattern
from repro.server import FleetClient, StoreRegistry, wait_until_ready
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics
from repro.stats.flatpack import store_from_image, store_to_image
from repro.stats.shm import (
    HEADER_BYTES,
    PID_SLOTS,
    PID_TABLE_OFFSET,
    SharedArtifactPlane,
)

SRC = Path(__file__).resolve().parent.parent / "src"

QUERIES = [
    "a -[A]-> b -[B]-> c",
    "x -[B]-> y -[C]-> z",
    "u -[B]-> v, u -[B]-> w",
]
SPECS = ["max-hop-max", "all-hops-avg", "MOLP"]


@pytest.fixture()
def artifact_dir(tmp_path):
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(tmp_path / "art")
    return tmp_path / "art"


@pytest.fixture()
def plane(tmp_path):
    root = tmp_path / "shm"
    root.mkdir()
    return SharedArtifactPlane(root)


def estimates_of(store):
    """Query-major (estimate, error) cells — the bit-identity probe."""
    batch = store.session().estimate_batch(
        [parse_pattern(text) for text in QUERIES], specs=SPECS
    )
    return [(item.estimate, item.error) for item in batch.items]


def segment_pids(plane, key):
    """The live pid refcount table of a segment, straight off the file."""
    raw = plane._image_path(key).read_bytes()
    table = struct.unpack_from(f"<{PID_SLOTS}q", raw, PID_TABLE_OFFSET)
    return [pid for pid in table if pid != 0]


class TestPlaneUnit:
    def test_publish_then_attach_bit_identical(self, plane, artifact_dir):
        key = plane.store_key(artifact_dir)
        disk = StatisticsStore.load(artifact_dir)
        meta, arrays, publisher = plane.acquire(
            key, lambda: store_to_image(StatisticsStore.load(artifact_dir))
        )
        attacher = plane.try_attach(key)
        assert attacher is not None
        try:
            # Raw array bytes shared verbatim — stronger than value
            # equality: the attach pays no decode at all.
            attached = attacher.arrays()
            assert set(attached) == set(arrays)
            for name, array in arrays.items():
                np.testing.assert_array_equal(array, attached[name])
            shared = store_from_image(attacher.meta, attached)
            assert estimates_of(shared) == estimates_of(disk)
        finally:
            attacher.close()
            publisher.close()

    def test_publish_meta_growth_never_overlaps_arrays(self, plane):
        # 200 tiny arrays: once the meta precedes the data, ~93 of the
        # first render's 4-digit offsets become 5-digit, growing the
        # second render past the <=63-byte alignment slack a fixed
        # two-pass offset scheme could absorb.  The publisher must keep
        # re-rendering until the meta stops growing, or the first
        # array's bytes overwrite the meta tail and attachers fail the
        # JSON parse (observed as try_attach returning None and every
        # worker re-parsing from disk).
        key = "meta-growth-regression00"
        arrays = {
            f"grow::{i:03d}": np.array([float(i)], dtype=np.float64)
            for i in range(200)
        }
        _, _, publisher = plane.acquire(
            key, lambda: ({"kind": "probe"}, arrays)
        )
        attacher = plane.try_attach(key)
        assert attacher is not None, "published meta must survive the write"
        try:
            entries = attacher.meta["__arrays__"]
            raw = plane._image_path(key).read_bytes()
            meta_len = struct.unpack_from("<q", raw, 24)[0]
            assert entries[0]["offset"] >= HEADER_BYTES + meta_len
            attached = attacher.arrays()
            for name, array in arrays.items():
                np.testing.assert_array_equal(attached[name], array)
        finally:
            attacher.close()
            publisher.close()
        assert plane.segments() == []

    def test_last_close_unlinks_segment(self, plane, artifact_dir):
        key = plane.store_key(artifact_dir)
        _, _, first = plane.acquire(
            key, lambda: store_to_image(StatisticsStore.load(artifact_dir))
        )
        second = plane.try_attach(key)
        assert plane.segments(), "segment should exist while registered"
        second.close()
        assert plane.segments(), "first registrant still holds the segment"
        first.close()
        assert plane.segments() == [], "last close must unlink"

    def test_key_tracks_artifact_generation(
        self, plane, artifact_dir, tmp_path
    ):
        assert plane.store_key(artifact_dir) == plane.store_key(artifact_dir)
        other = tmp_path / "other"
        shutil.copytree(artifact_dir, other)
        # Same content at a different path is a different segment (the
        # digest covers the resolved path), and rewriting the manifest —
        # what a delta/compaction does — rolls the key at a fixed path.
        assert plane.store_key(artifact_dir) != plane.store_key(other)
        before = plane.store_key(other)
        manifest = other / "manifest.json"
        manifest.write_text(manifest.read_text() + "\n")
        assert plane.store_key(other) != before

    def test_dead_builders_claim_is_stolen(self, plane, artifact_dir):
        key = plane.store_key(artifact_dir)
        # A pid that existed and is gone: a subprocess already reaped.
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(proc.stdout.strip())
        (plane.root / f"repro-clm-{key}").write_text(str(dead_pid))
        assert plane.try_attach(key) is None  # steals, does not hang
        assert not (plane.root / f"repro-clm-{key}").exists()
        _, _, handle = plane.acquire(
            key, lambda: store_to_image(StatisticsStore.load(artifact_dir))
        )
        assert plane.publishes == 1
        handle.close()
        assert plane.segments() == []

    def test_sigkilled_registrant_is_pruned(self, plane, artifact_dir):
        key = plane.store_key(artifact_dir)
        _, _, parent_handle = plane.acquire(
            key, lambda: store_to_image(StatisticsStore.load(artifact_dir))
        )
        pid = os.fork()
        if pid == 0:  # child: register, then hang until SIGKILLed
            try:
                handle = plane.try_attach(key)
                if handle is not None:
                    signal.pause()
            finally:
                os._exit(1)
        try:
            deadline = time.monotonic() + 10.0
            while pid not in segment_pids(plane, key):
                assert time.monotonic() < deadline, "child never registered"
                time.sleep(0.02)
        finally:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
        # The dead child's slot is pruned on the next table mutation;
        # the parent is then the last registrant and unlinks on close.
        parent_handle.close()
        assert plane.segments() == []


class TestRegistrySharing:
    def test_second_registry_attaches_instead_of_parsing(
        self, plane, artifact_dir
    ):
        from repro.stats.store import parse_count

        first = StoreRegistry(plane=plane)
        entry_one = first.load("t", artifact_dir)
        parses_before = parse_count()
        second = StoreRegistry(plane=plane)
        entry_two = second.load("t", artifact_dir)
        assert parse_count() == parses_before, (
            "the attaching registry must not touch the artifact files"
        )
        assert plane.publishes == 1 and plane.attaches == 1
        assert entry_one.shm is not None and entry_two.shm is not None
        assert estimates_of(entry_one.store) == estimates_of(entry_two.store)
        first.release_shared()
        second.release_shared()
        assert plane.segments() == []

    def test_plane_failure_falls_back_to_disk(self, artifact_dir, tmp_path):
        registry = StoreRegistry(
            plane=SharedArtifactPlane(tmp_path / "not-a-dir")
        )
        entry = registry.load("t", artifact_dir)
        assert entry.shm is None
        assert estimates_of(entry.store) == estimates_of(
            StatisticsStore.load(artifact_dir)
        )

    def test_invalid_artifact_still_raises_dataset_error(
        self, plane, tmp_path
    ):
        registry = StoreRegistry(plane=plane)
        with pytest.raises(DatasetError):
            registry.load("t", tmp_path / "nope")
        assert plane.segments() == [], "a failed build must not leak"


# ----------------------------------------------------------------------
# Live fleet chaos (subprocess `repro serve --workers N`)
# ----------------------------------------------------------------------
WORKERS = 2


class ShmFleet:
    """A fleet subprocess with its shared plane rooted in a tmp dir."""

    def __init__(self, artifact_dir: Path, shm_root: Path):
        self.shm_root = shm_root
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--tenant", f"t1={artifact_dir}",
                "--tenant", f"t2={artifact_dir}",
                "--port", "0",
                "--workers", str(WORKERS),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={
                **os.environ,
                "PYTHONPATH": str(SRC),
                "REPRO_SHM_DIR": str(shm_root),
            },
            text=True,
        )
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()
        self.ready = self.wait_event(lambda e: e["event"] == "ready", 60.0)
        self.host = self.ready["host"]
        self.port = self.ready["port"]
        wait_until_ready(self.host, self.port, timeout=30.0)

    def _read(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.strip()
            if line:
                with self._lock:
                    self.events.append(json.loads(line))

    def wait_event(self, predicate, timeout: float) -> dict:
        deadline = time.monotonic() + timeout
        seen = 0
        while time.monotonic() < deadline:
            with self._lock:
                fresh = self.events[seen:]
                seen = len(self.events)
            for event in fresh:
                if predicate(event):
                    return event
            time.sleep(0.02)
        raise AssertionError(
            f"fleet event did not arrive in {timeout}s; saw {self.events}"
        )

    def worker_pids(self) -> dict[int, int]:
        pids = {w["index"]: w["pid"] for w in self.ready["workers"]}
        with self._lock:
            for event in self.events:
                if event["event"] == "worker-started":
                    pids[event["index"]] = event["pid"]
        return pids

    def finish(self, timeout: float = 30.0) -> tuple[int, str]:
        self.proc.wait(timeout=timeout)
        self._reader.join(5.0)
        stderr = self.proc.stderr.read() if self.proc.stderr else ""
        return self.proc.returncode, stderr

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5)
        if self.proc.stdout:
            self.proc.stdout.close()
        if self.proc.stderr:
            self.proc.stderr.close()


@pytest.fixture()
def shm_fleet(artifact_dir, tmp_path):
    shm_root = tmp_path / "shmroot"
    shm_root.mkdir()
    fleet = ShmFleet(artifact_dir, shm_root)
    yield fleet
    fleet.cleanup()


def shm_entries(root: Path) -> list[str]:
    return sorted(p.name for p in root.glob("repro-*"))


def assert_bit_identical(client, reference, tenants=("t1", "t2")):
    for tenant in tenants:
        for index, text in enumerate(QUERIES):
            served = client.estimate(tenant, text, SPECS)
            for spec_index, spec in enumerate(SPECS):
                expected, error = reference[index * len(SPECS) + spec_index]
                if error is None:
                    assert served["estimates"][spec] == expected
                else:
                    assert served["errors"][spec] == error


class TestFleetShm:
    def test_reload_parses_once_per_host(self, shm_fleet, artifact_dir):
        reference = estimates_of(StatisticsStore.load(artifact_dir))
        # Boot published exactly one image: t1 and t2 share the
        # artifact, so the second tenant attached the first's segment.
        assert len(shm_entries(shm_fleet.shm_root)) == 1
        with FleetClient(shm_fleet.host, shm_fleet.port) as client:
            assert_bit_identical(client, reference)
            before = client.stats()["aggregate"]["artifact_plane"]
            # Each worker fork-inherits the supervisor's single parse.
            assert before["disk_parses"] == WORKERS
            assert client.stats()["aggregate"]["memory"]["uss_kb_max"] > 0

            # Reload both tenants onto a new artifact generation (same
            # content, new path → new segment key): the whole fleet must
            # pay exactly ONE disk parse, everyone else attaches.
            moved = artifact_dir.parent / "art-v2"
            shutil.copytree(artifact_dir, moved)
            for tenant in ("t1", "t2"):
                client.reload(tenant, path=str(moved))
            after = client.stats()["aggregate"]["artifact_plane"]
            assert after["disk_parses"] - before["disk_parses"] == 1
            assert after["publishes"] - before["publishes"] == 1
            assert after["attaches"] - before["attaches"] >= 2 * WORKERS - 1
            assert_bit_identical(client, reference)
            # Two segments while draining the old generation: the
            # supervisor's fork-time registry still pins the boot image.
            assert len(shm_entries(shm_fleet.shm_root)) == 2
            client.shutdown()
        code, stderr = shm_fleet.finish()
        assert code == 0 and stderr == ""
        assert shm_entries(shm_fleet.shm_root) == []

    def test_sigkill_mid_reload_restarted_worker_attaches(
        self, shm_fleet, artifact_dir
    ):
        reference = estimates_of(StatisticsStore.load(artifact_dir))
        pids = shm_fleet.worker_pids()
        with FleetClient(shm_fleet.host, shm_fleet.port) as client:
            # Fire a reload storm and SIGKILL a worker while it lands.
            def storm():
                with FleetClient(shm_fleet.host, shm_fleet.port) as inner:
                    for _ in range(4):
                        try:
                            inner.reload("t1")
                        except Exception:
                            pass  # the dying worker may drop a call

            thread = threading.Thread(target=storm)
            thread.start()
            os.kill(pids[0], signal.SIGKILL)
            thread.join(60.0)
            assert not thread.is_alive()
            shm_fleet.wait_event(
                lambda e: e["event"] == "worker-started", 60.0
            )
            wait_until_ready(shm_fleet.host, shm_fleet.port, timeout=30.0)
            # The restarted worker attached the host's published image
            # (fork inheritance + reattach) and serves bit-identical
            # floats on both tenants.
            assert_bit_identical(client, reference)
            client.shutdown()
        code, stderr = shm_fleet.finish()
        assert code == 0 and stderr == ""
        # No leaked segments: the SIGKILL'd worker's registration was
        # pruned by its peers, the drain released the rest.
        assert shm_entries(shm_fleet.shm_root) == []
