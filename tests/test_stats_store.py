"""Artifact round-trips and graph-free serving for the statistics store.

The contract under test: for every catalog and both baseline summaries,
build → save → load → estimate is **bit-identical** (``==`` on floats)
to the never-persisted path, and a store loaded without a graph serves
estimates with zero engine calls — enforced by monkeypatching the
engine entry points to fail if touched.
"""

import json

import pytest

from repro.baselines.characteristic_sets import CharacteristicSetsEstimator
from repro.baselines.sumrdf import SumRdfEstimator
from repro.catalog.cycle_rates import CycleClosingRates
from repro.catalog.degrees import DegreeCatalog
from repro.catalog.entropy import EntropyCatalog
from repro.catalog.markov import MarkovTable
from repro.core.ceg_m import molp_bound
from repro.core.estimators import (
    MolpEstimator,
    all_nine_estimators,
    estimators_from_store,
)
from repro.datasets.presets import running_example_graph
from repro.datasets.workloads import acyclic_workload, cyclic_workload
from repro.errors import DatasetError, MissingStatisticError
from repro.graph.generators import generate_graph
from repro.query import parse_pattern, templates
from repro.query.pattern import QueryPattern
from repro.stats import (
    StatisticsStore,
    StatsBuildConfig,
    build_statistics,
    extend_statistics,
)


@pytest.fixture(scope="module")
def example_graph():
    return running_example_graph()


@pytest.fixture(scope="module")
def q5f():
    return templates.fork(2, 3).with_labels(["A", "B", "C", "D", "E"])


@pytest.fixture(scope="module")
def cyclic_graph():
    return generate_graph(
        num_vertices=60, num_edges=300, num_labels=4, seed=11, closure=0.35
    )


@pytest.fixture(scope="module")
def cyclic_pool(cyclic_graph):
    queries = acyclic_workload(cyclic_graph, per_template=1, seed=5, sizes=(6,))
    queries += cyclic_workload(cyclic_graph, per_template=1, seed=5)
    return [query.pattern for query in queries]


# ----------------------------------------------------------------------
# Per-catalog artifact round-trips
# ----------------------------------------------------------------------

class TestMarkovArtifact:
    def test_round_trip_bit_identical(self, example_graph, q5f):
        table = MarkovTable(example_graph, h=2)
        fresh = all_nine_estimators(table)
        baseline = {
            name: est.estimate(q5f) for name, est in fresh.items()
        }
        table.prime([parse_pattern("x -[A]-> y -[B]-> z")])
        loaded = MarkovTable.from_artifact(
            table.to_artifact(), example_graph
        )
        assert loaded.num_entries == table.num_entries
        for name, est in all_nine_estimators(loaded).items():
            assert est.estimate(q5f) == baseline[name], name

    def test_save_payload_has_format_version(self, example_graph, tmp_path):
        table = MarkovTable(example_graph, h=2)
        path = tmp_path / "markov.json"
        table.save(path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1

    def test_missing_version_is_friendly_dataset_error(
        self, example_graph, tmp_path
    ):
        path = tmp_path / "markov.json"
        path.write_text(json.dumps({"h": 2, "entries": []}))
        with pytest.raises(DatasetError, match="format_version"):
            MarkovTable.load(path, example_graph)

    def test_mismatched_version_is_friendly_dataset_error(
        self, example_graph, tmp_path
    ):
        path = tmp_path / "markov.json"
        path.write_text(
            json.dumps({"format_version": 99, "h": 2, "entries": []})
        )
        with pytest.raises(DatasetError, match="format_version 99"):
            MarkovTable.load(path, example_graph)

    def test_graph_free_complete_serves_miss_as_zero(self, example_graph):
        table = MarkovTable(example_graph, h=2, labels=example_graph.labels,
                            complete=True)
        table.prime([parse_pattern("x -[A]-> y")])
        loaded = MarkovTable.from_artifact(table.to_artifact())
        assert loaded.graph is None
        assert loaded.cardinality(parse_pattern("x -[A]-> y")) == 4.0
        # Complete table: an unstored (empty) join reads as 0.
        assert loaded.cardinality(parse_pattern("x -[C]-> y -[A]-> z")) == 0.0

    def test_graph_free_incomplete_raises_on_miss(self, example_graph):
        table = MarkovTable(example_graph, h=2, labels=example_graph.labels)
        table.prime([parse_pattern("x -[A]-> y")])
        loaded = MarkovTable.from_artifact(table.to_artifact())
        with pytest.raises(MissingStatisticError):
            loaded.cardinality(parse_pattern("x -[B]-> y"))
        # Unknown labels are empty relations even without completeness.
        assert loaded.cardinality(parse_pattern("x -[Z]-> y")) == 0.0


class TestDegreesArtifact:
    def test_round_trip_bit_identical(self, cyclic_graph, cyclic_pool):
        catalog = DegreeCatalog(cyclic_graph, h=2)
        baseline = [molp_bound(q, catalog) for q in cyclic_pool]
        loaded = DegreeCatalog.from_artifact(catalog.to_artifact())
        assert loaded.graph is None
        for query, expected in zip(cyclic_pool, baseline):
            assert molp_bound(query, loaded) == expected

    def test_renamed_view_of_stored_relation(self, example_graph):
        catalog = DegreeCatalog(example_graph, h=2)
        pattern = parse_pattern("x -[A]-> y -[B]-> z")
        relation = catalog.relation_for(pattern)
        loaded = DegreeCatalog.from_artifact(catalog.to_artifact())
        renamed = parse_pattern("p -[A]-> q -[B]-> r")
        view = loaded.relation_for(renamed)
        for x, y in [
            (frozenset(), frozenset({"p"})),
            (frozenset({"q"}), frozenset({"q", "r"})),
        ]:
            translated_x = frozenset(v.translate(str.maketrans("pqr", "xyz"))
                                     for v in x)
            translated_y = frozenset(v.translate(str.maketrans("pqr", "xyz"))
                                     for v in y)
            assert view.deg(x, y) == relation.deg(translated_x, translated_y)

    def test_graph_free_miss_raises(self, example_graph):
        catalog = DegreeCatalog(example_graph, h=2)
        catalog.relation_for(parse_pattern("x -[A]-> y"))
        loaded = DegreeCatalog.from_artifact(catalog.to_artifact())
        with pytest.raises(MissingStatisticError):
            loaded.relation_for(parse_pattern("x -[B]-> y"))

    def test_complete_graph_free_serves_empty_on_miss(self, example_graph):
        catalog = DegreeCatalog(example_graph, h=2, complete=True)
        loaded = DegreeCatalog.from_artifact(catalog.to_artifact())
        relation = loaded.relation_for(parse_pattern("x -[Z]-> y"))
        assert relation.cardinality == 0.0
        assert relation.deg(frozenset(), frozenset({"x"})) == 0.0


class TestCycleRatesArtifact:
    def test_round_trip(self, cyclic_graph, cyclic_pool):
        store = build_statistics(
            cyclic_graph,
            StatsBuildConfig(h=2, cycle_rates=True, cycle_seed=3),
            workload=cyclic_pool,
        )
        rates = store.cycle_rates
        assert rates is not None and rates.num_entries > 0
        loaded = CycleClosingRates.from_artifact(rates.to_artifact())
        assert loaded.graph is None
        assert loaded.num_entries == rates.num_entries
        assert loaded._cache == rates._cache

    def test_graph_free_unstored_spec_fails_loudly(self):
        """An unprimed spec must not silently fall back to CEG_O weights
        (that would serve a different estimate than the graph-backed
        path); only a *stored* None keeps the shared fallback."""
        loaded = CycleClosingRates.from_artifact(
            {"format_version": 1, "entries": []}
        )
        triangle = QueryPattern(
            [("a", "b", "A"), ("b", "c", "B"), ("c", "a", "C")]
        )
        with pytest.raises(MissingStatisticError, match="cycle-closing"):
            loaded.rate(triangle, frozenset({0, 1, 2}), 2)

    def test_graph_free_stored_none_keeps_fallback(self, cyclic_graph):
        rates = CycleClosingRates(cyclic_graph, seed=3)
        triangle = QueryPattern(
            [("a", "b", "ZZZ"), ("b", "c", "ZZZ"), ("c", "a", "ZZZ")]
        )
        # Unknown label: sampling completes no walks, caching None.
        assert rates.rate(triangle, frozenset({0, 1, 2}), 2) is None
        loaded = CycleClosingRates.from_artifact(rates.to_artifact())
        assert loaded.rate(triangle, frozenset({0, 1, 2}), 2) is None


class TestEntropyArtifact:
    def test_round_trip_and_graph_free_miss(self, cyclic_graph, cyclic_pool):
        catalog = EntropyCatalog(cyclic_graph)
        pattern = cyclic_pool[0]
        sub = pattern.subpattern([0, 1])
        variables = frozenset({sub.edges[0].src, sub.edges[0].dst}) & frozenset(
            sub.variables
        )
        value = catalog.irregularity(sub, variables)
        loaded = EntropyCatalog.from_artifact(catalog.to_artifact())
        assert loaded.irregularity(sub, variables) == value
        with pytest.raises(MissingStatisticError):
            loaded.irregularity(pattern.subpattern([0]), frozenset({"zzz"}))


class TestBaselineArtifacts:
    def test_characteristic_sets_round_trip(self, cyclic_graph, cyclic_pool):
        fresh = CharacteristicSetsEstimator(cyclic_graph)
        loaded = CharacteristicSetsEstimator.from_artifact(fresh.to_artifact())
        assert loaded.graph is None
        for query in cyclic_pool:
            assert loaded.estimate(query) == fresh.estimate(query)

    def test_sumrdf_round_trip(self, cyclic_graph, cyclic_pool, tmp_path):
        import numpy as np

        fresh = SumRdfEstimator(cyclic_graph, num_buckets=16, seed=2)
        path = tmp_path / "sumrdf.npz"
        np.savez_compressed(path, **fresh.to_artifact())
        with np.load(path) as data:
            loaded = SumRdfEstimator.from_artifact(dict(data.items()))
        assert loaded.graph is None
        for query in cyclic_pool:
            assert loaded.estimate(query) == fresh.estimate(query)


# ----------------------------------------------------------------------
# The store: bulk build, persistence, graph-free serving
# ----------------------------------------------------------------------

class TestBulkBuild:
    def test_full_enumeration_matches_lazy_counts(self, cyclic_graph):
        store = build_statistics(cyclic_graph, StatsBuildConfig(h=2))
        assert store.manifest.complete
        lazy = MarkovTable(cyclic_graph, h=2)
        assert store.markov.num_entries > 0
        for key, count in store.markov._cache.items():
            pattern = QueryPattern(
                (f"v{s}", f"v{d}", label) for s, d, label in key
            )
            assert lazy.cardinality(pattern) == count

    def test_workload_build_covers_workload(self, cyclic_graph, cyclic_pool):
        store = build_statistics(
            cyclic_graph, StatsBuildConfig(h=2), workload=cyclic_pool
        )
        assert not store.manifest.complete
        lazy = MarkovTable(cyclic_graph, h=2)
        suite = all_nine_estimators(store.markov)
        fresh = all_nine_estimators(lazy)
        for query in cyclic_pool:
            for name in suite:
                assert suite[name].estimate(query) == fresh[name].estimate(
                    query
                ), name

    def test_extend_statistics_adds_new_shapes(
        self, cyclic_graph, cyclic_pool, tmp_path
    ):
        store = build_statistics(
            cyclic_graph, StatsBuildConfig(h=2), workload=cyclic_pool[:1]
        )
        before = store.markov.num_entries
        extend_statistics(store, cyclic_graph, cyclic_pool)
        assert store.markov.num_entries >= before
        # After extension the whole workload is covered graph-free.
        directory = tmp_path / "extended"
        store.save(directory)
        loaded = StatisticsStore.load(directory)
        batch = loaded.session().estimate_batch(
            cyclic_pool, specs=["max-hop-max", "MOLP"]
        )
        assert batch.ok


class TestStorePersistence:
    def test_load_missing_directory_is_friendly(self, tmp_path):
        # Satellite: a missing artifact directory must be the friendly
        # DatasetError, never a raw FileNotFoundError.
        with pytest.raises(DatasetError, match="does not exist"):
            StatisticsStore.load(tmp_path / "nope")

    def test_load_directory_without_manifest_is_friendly(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(DatasetError, match="manifest.json"):
            StatisticsStore.load(empty)

    def test_load_missing_catalog_arrays_is_friendly(self, saved):
        _, directory = saved
        (directory / "catalogs.npz").unlink()
        with pytest.raises(DatasetError, match="catalogs.npz"):
            StatisticsStore.load(directory)

    def test_load_missing_sumrdf_npz_is_friendly(self, saved, tmp_path):
        # The legacy layout's friendly error stays intact.
        store, _ = saved
        directory = tmp_path / "legacy"
        store.save(directory, layout="json")
        (directory / "sumrdf.npz").unlink()
        with pytest.raises(DatasetError, match="sumrdf.npz"):
            StatisticsStore.load(directory)

    @pytest.fixture()
    def saved(self, cyclic_graph, cyclic_pool, tmp_path):
        store = build_statistics(
            cyclic_graph,
            StatsBuildConfig(h=2, cycle_rates=True, cycle_seed=3),
            workload=cyclic_pool,
            dataset_name="test",
        )
        directory = tmp_path / "artifact"
        store.save(directory)
        return store, directory

    def test_loaded_graph_free_store_matches_fresh_estimates(
        self, saved, cyclic_graph, cyclic_pool
    ):
        _, directory = saved
        loaded = StatisticsStore.load(directory)
        assert loaded.graph_free
        markov = MarkovTable(cyclic_graph, h=2)
        fresh = all_nine_estimators(markov)
        fresh["MOLP"] = MolpEstimator(cyclic_graph, h=2)
        suite = estimators_from_store(loaded)
        for query in cyclic_pool:
            for name, estimator in suite.items():
                assert estimator.estimate(query) == fresh[name].estimate(
                    query
                ), name

    def test_loaded_session_batch_matches_fresh(
        self, saved, cyclic_graph, cyclic_pool
    ):
        _, directory = saved
        loaded = StatisticsStore.load(directory)
        session = loaded.session()
        specs = ["max-hop-max", "all-hops-avg", "MOLP"]
        batch = session.estimate_batch(cyclic_pool, specs=specs)
        assert batch.ok
        markov = MarkovTable(cyclic_graph, h=2)
        for index, query in enumerate(cyclic_pool):
            from repro.core.estimators import OptimisticEstimator

            assert batch.item(index, "max-hop-max").estimate == (
                OptimisticEstimator(markov, "max", "max").estimate(query)
            )
            assert batch.item(index, "MOLP").estimate == (
                MolpEstimator(cyclic_graph, h=2).estimate(query)
            )

    def test_fingerprint_mismatch_rejected(self, saved):
        _, directory = saved
        other = generate_graph(
            num_vertices=30, num_edges=80, num_labels=3, seed=99
        )
        with pytest.raises(DatasetError, match="different dataset"):
            StatisticsStore.load(directory, graph=other)

    def test_fingerprint_match_accepted(self, saved, cyclic_graph):
        _, directory = saved
        loaded = StatisticsStore.load(directory, graph=cyclic_graph)
        assert loaded.graph is cyclic_graph

    def test_manifest_version_mismatch_rejected(self, saved):
        _, directory = saved
        manifest_path = directory / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["format_version"] = 99
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(DatasetError, match="format_version"):
            StatisticsStore.load(directory)

    def test_serving_never_touches_the_engine(
        self, saved, cyclic_pool, monkeypatch
    ):
        """The acceptance gate: zero count_pattern / base-graph scans.

        Every engine entry point the lazy catalogs use is patched to
        fail; a graph-free store must still serve the whole workload.
        """
        _, directory = saved
        loaded = StatisticsStore.load(directory)

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("serving touched the exact engine")

        import repro.catalog.degrees as degrees_module
        import repro.catalog.markov as markov_module
        import repro.engine.counter as counter_module

        monkeypatch.setattr(markov_module, "count_pattern", forbidden)
        monkeypatch.setattr(counter_module, "count_pattern", forbidden)
        monkeypatch.setattr(degrees_module, "start_table", forbidden)
        monkeypatch.setattr(degrees_module, "extend_by_edge", forbidden)

        session = loaded.session()
        batch = session.estimate_batch(
            cyclic_pool, specs=["max-hop-max", "min-hop-min", "MOLP"]
        )
        assert batch.ok

    def test_sketch_spec_rejected_graph_free(self, saved, cyclic_pool):
        _, directory = saved
        session = StatisticsStore.load(directory).session()
        with pytest.raises(ValueError, match="partitions base relations"):
            session.estimate_batch(cyclic_pool[:1], specs=["MOLP-sketch4"])


class TestHarnessFromStore:
    def test_run_harness_batched_accepts_store(self, cyclic_graph):
        from repro.experiments.harness import run_harness, run_harness_batched

        workload = acyclic_workload(
            cyclic_graph, per_template=1, seed=5, sizes=(6,)
        )
        store = build_statistics(
            cyclic_graph,
            StatsBuildConfig(h=2),
            workload=[query.pattern for query in workload],
        )
        markov = MarkovTable(cyclic_graph, h=2)
        plain = run_harness(
            workload, {"max-hop-max": all_nine_estimators(markov)["max-hop-max"]}
        )
        stored = run_harness_batched(workload, store, ["max-hop-max"])
        assert stored.estimates["max-hop-max"] == plain.estimates["max-hop-max"]
