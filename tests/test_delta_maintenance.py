"""The dynamic-graph differential gate.

For randomized insert/delete batches on the example dataset, every
catalog in the incrementally maintained store must be bit-identical to
``build_statistics`` run cold on the mutated graph, and all nine §4.2
estimators plus MOLP must return identical floats through both stores —
in-process and via a live-refreshed server tenant.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.presets import running_example_graph
from repro.delta import (
    MutableGraphOverlay,
    UpdateBatch,
    apply_updates,
    compact_artifact,
    random_update_batch,
    replay_graph,
)
from repro.errors import DatasetError
from repro.query.parser import parse_pattern
from repro.service.session import EstimatorSpec
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics
from repro.stats.artifact import dataset_fingerprint

NINE_PLUS_MOLP = tuple(
    f"{'all-hops' if hop == 'all' else hop + '-hop'}-{aggr}"
    for hop in ("max", "min", "all")
    for aggr in ("max", "min", "avg")
) + ("MOLP",)

QUERIES = [
    "a -[A]-> b -[B]-> c",
    "x -[B]-> y -[C]-> z",
    "p -[A]-> q",
    "u -[B]-> v -[D]-> w",
    "s -[E]-> t",
]

#: Forces the incremental path even for batches that are large relative
#: to the 18-edge example graph.
NO_COMPACT = 100.0


def example_store(**config):
    graph = running_example_graph()
    return build_statistics(
        graph,
        StatsBuildConfig(h=2, molp_h=2, **config),
        dataset_name="example",
    )


def mutated_graph(base, batch):
    overlay = MutableGraphOverlay(base)
    overlay.apply_batch(batch)
    return overlay.materialize()


def assert_catalogs_bit_identical(maintained, cold):
    assert maintained.markov.to_artifact() == cold.markov.to_artifact()
    assert maintained.degrees.to_artifact() == cold.degrees.to_artifact()
    if maintained.characteristic_sets is not None:
        assert (
            maintained.characteristic_sets.to_artifact()
            == cold.characteristic_sets.to_artifact()
        )
    if maintained.sumrdf is not None:
        # Same process, same seed: bucketing is reproducible here.
        fresh = maintained.sumrdf.to_artifact()
        against = cold.sumrdf.to_artifact()
        assert fresh["labels"] == against["labels"]
        assert (fresh["sizes"] == against["sizes"]).all()
        assert (fresh["matrices"] == against["matrices"]).all()


def assert_estimates_identical(maintained, cold, queries=QUERIES):
    session_a = maintained.session()
    session_b = cold.session()
    for text in queries:
        query = parse_pattern(text)
        for name in NINE_PLUS_MOLP:
            spec = EstimatorSpec.from_name(name)
            a = session_a.estimate_one(query, spec)
            b = session_b.estimate_one(query, spec)
            assert a.ok == b.ok, (text, name, a.error, b.error)
            if a.ok:
                assert a.estimate == b.estimate, (text, name)


class TestDifferentialGate:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_batches_match_cold_rebuild(self, seed):
        rng = random.Random(seed)
        graph = running_example_graph()
        store = example_store()
        batch = random_update_batch(
            graph, rng, num_inserts=5, num_deletes=5, new_label_rate=0.2
        )
        outcome = apply_updates(store, batch, compact_threshold=NO_COMPACT)
        assert outcome.mode == "incremental"
        cold = build_statistics(
            mutated_graph(graph, batch),
            StatsBuildConfig(h=2, molp_h=2),
            dataset_name="example",
        )
        assert store.manifest.dataset_fingerprint == dataset_fingerprint(
            cold.graph
        )
        assert_catalogs_bit_identical(store, cold)
        assert_estimates_identical(store, cold)

    def test_insert_makes_pattern_appear(self):
        # B->A paths do not exist in the example graph; inserting an A
        # edge out of the B layer creates the two-atom pattern, which a
        # complete artifact must discover.
        store = example_store(baselines=False)
        batch = UpdateBatch([["+", 5, 3, "A"]])
        apply_updates(store, batch, compact_threshold=NO_COMPACT)
        cold = build_statistics(
            mutated_graph(running_example_graph(), batch),
            StatsBuildConfig(h=2, molp_h=2, baselines=False),
        )
        assert_catalogs_bit_identical(store, cold)
        query = parse_pattern("x -[B]-> y -[A]-> z")
        item = store.session().estimate_one(
            query, EstimatorSpec.from_name("max-hop-max")
        )
        assert item.ok and item.estimate > 0.0

    def test_delete_makes_pattern_vanish(self):
        # Deleting every C edge empties all C-containing patterns; a
        # complete artifact must drop them (cold builds never store 0).
        graph = running_example_graph()
        store = example_store(baselines=False)
        batch = UpdateBatch(
            [["-", s, d, label] for s, d, label in graph.triples()
             if label == "C"]
        )
        apply_updates(store, batch, compact_threshold=NO_COMPACT)
        cold = build_statistics(
            mutated_graph(graph, batch),
            StatsBuildConfig(h=2, molp_h=2, baselines=False),
        )
        assert_catalogs_bit_identical(store, cold)
        assert all(
            "C" not in {label for _, _, label in key}
            for key in store.markov._cache
        )
        assert_estimates_identical(store, cold)

    def test_new_label_extends_universe(self):
        store = example_store(baselines=False)
        batch = UpdateBatch([["+", 0, 1, "ZX"], ["+", 1, 3, "ZX"]])
        apply_updates(store, batch, compact_threshold=NO_COMPACT)
        cold = build_statistics(
            mutated_graph(running_example_graph(), batch),
            StatsBuildConfig(h=2, molp_h=2, baselines=False),
        )
        assert store.markov.labels == cold.graph.labels
        assert_catalogs_bit_identical(store, cold)

    def test_noop_batch_changes_nothing(self):
        store = example_store(baselines=False)
        before = store.markov.to_artifact()
        outcome = apply_updates(
            store,
            UpdateBatch([["+", 0, 3, "A"], ["-", 9, 9, "Q"]]),
            compact_threshold=NO_COMPACT,
        )
        assert outcome.mode == "noop"
        assert store.markov.to_artifact() == before
        assert store.manifest.generation == 0

    def test_compaction_threshold_triggers_cold_rebuild(self):
        store = example_store()
        batch = random_update_batch(
            running_example_graph(), random.Random(1), 6, 6
        )
        outcome = apply_updates(store, batch, compact_threshold=0.1)
        assert outcome.mode == "compacted"
        cold = build_statistics(
            mutated_graph(running_example_graph(), batch),
            StatsBuildConfig(h=2, molp_h=2),
            dataset_name="example",
        )
        assert_catalogs_bit_identical(store, cold)

    def test_budgeted_store_refuses_maintenance(self):
        graph = running_example_graph()
        store = build_statistics(
            graph, StatsBuildConfig(h=2, molp_h=2, count_budget=10_000)
        )
        with pytest.raises(DatasetError, match="budget"):
            apply_updates(store, UpdateBatch([["+", 0, 5, "B"]]))

    def test_graph_free_store_refuses_maintenance(self, tmp_path):
        store = example_store(baselines=False)
        store.save(tmp_path)
        loaded = StatisticsStore.load(tmp_path)
        with pytest.raises(DatasetError, match="base graph"):
            apply_updates(loaded, UpdateBatch([["+", 0, 5, "B"]]))


class TestWorkloadDirectedStores:
    def workload(self):
        return [
            parse_pattern("a -[A]-> b -[B]-> c"),
            parse_pattern("x -[B]-> y -[C]-> z"),
            parse_pattern("u -[E]-> v"),
        ]

    def test_maintains_exactly_the_stored_keys(self):
        graph = running_example_graph()
        config = StatsBuildConfig(h=2, molp_h=2, baselines=False)
        store = build_statistics(graph, config, workload=self.workload())
        batch = UpdateBatch(
            [["-", 3, 5, "B"], ["+", 0, 5, "B"], ["+", 12, 0, "A"]]
        )
        outcome = apply_updates(store, batch, compact_threshold=NO_COMPACT)
        assert outcome.mode == "incremental"
        cold = build_statistics(
            mutated_graph(graph, batch), config, workload=self.workload()
        )
        assert_catalogs_bit_identical(store, cold)
        assert_estimates_identical(
            store, cold, queries=["a -[A]-> b -[B]-> c", "u -[E]-> v"]
        )

    def test_zero_counts_stay_stored(self):
        graph = running_example_graph()
        config = StatsBuildConfig(h=2, molp_h=2, baselines=False)
        store = build_statistics(graph, config, workload=self.workload())
        batch = UpdateBatch(
            [["-", s, d, label] for s, d, label in graph.triples()
             if label == "E"]
        )
        apply_updates(store, batch, compact_threshold=NO_COMPACT)
        cold = build_statistics(
            mutated_graph(graph, batch), config, workload=self.workload()
        )
        # Workload-directed artifacts pin zero counts explicitly.
        key = next(
            key for key in cold.markov._cache
            if {label for _, _, label in key} == {"E"}
        )
        assert cold.markov._cache[key] == 0.0
        assert store.markov._cache[key] == 0.0
        assert_catalogs_bit_identical(store, cold)


class TestRefreshedCatalogs:
    """Cycle rates and entropy: refreshed deterministically, ledger'd.

    These statistics cannot be patched bit-identically to a cold
    workload-order rebuild (sampling order / CEG exploration depend on
    the whole graph), so maintenance recomputes them deterministically
    and says so in the staleness ledger.
    """

    def build(self):
        workload = [
            parse_pattern(
                "a -[A]-> b -[B]-> c -[C]-> d, a -[E]-> d"
            ),  # a 4-cycle: primes a closing rate at h=2
            parse_pattern("x -[B]-> y -[C]-> z"),
        ]
        graph = running_example_graph()
        store = build_statistics(
            graph,
            StatsBuildConfig(
                h=2, molp_h=2, baselines=False, cycle_rates=True,
                entropy=True, cycle_seed=3,
            ),
            workload=workload,
        )
        assert store.cycle_rates is not None and store.cycle_rates.num_entries
        assert store.entropy is not None and store.entropy.num_entries
        return graph, store

    def test_refresh_is_deterministic_and_ledgered(self):
        _, store_a = self.build()
        _, store_b = self.build()
        batch = UpdateBatch([["+", 0, 5, "B"], ["-", 2, 4, "A"]])
        out_a = apply_updates(store_a, batch, compact_threshold=NO_COMPACT)
        out_b = apply_updates(store_b, batch, compact_threshold=NO_COMPACT)
        assert out_a.mode == "incremental"
        assert "resampled" in out_a.ledger["cycle_rates"]
        assert "recomputed" in out_a.ledger["entropy"]
        assert (
            store_a.cycle_rates.to_artifact()
            == store_b.cycle_rates.to_artifact()
        )
        assert (
            store_a.entropy.to_artifact() == store_b.entropy.to_artifact()
        )
        # The rate specs (walk shapes) survive; only values resample.
        _, fresh = self.build()
        assert set(store_a.cycle_rates._cache) == set(fresh.cycle_rates._cache)

    def test_threshold_crossing_stays_incremental_and_says_so(self):
        """Workload-primed catalogs cannot be cold-rebuilt without the
        workload, so the compaction fallback is skipped — loudly."""
        _, store = self.build()
        batch = random_update_batch(
            running_example_graph(), random.Random(5), 6, 6
        )
        outcome = apply_updates(store, batch, compact_threshold=0.01)
        assert outcome.mode == "incremental"
        assert "compact_threshold" in outcome.ledger["compaction"]

    def test_refreshed_catalogs_replay_from_delta_file(self, tmp_path):
        graph, store = self.build()
        store.save(tmp_path)
        store = StatisticsStore.load(tmp_path, graph=graph)
        batch = UpdateBatch([["+", 0, 5, "B"], ["-", 2, 4, "A"]])
        apply_updates(
            store, batch, directory=tmp_path, compact_threshold=NO_COMPACT
        )
        reloaded = StatisticsStore.load(tmp_path)
        assert (
            reloaded.cycle_rates.to_artifact()
            == store.cycle_rates.to_artifact()
        )
        assert reloaded.entropy.to_artifact() == store.entropy.to_artifact()
        assert reloaded.markov.to_artifact() == store.markov.to_artifact()
        # '+ocr' estimates serve identically from the replayed artifact.
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d, a -[E]-> d")
        spec = EstimatorSpec.from_name("max-hop-max+ocr")
        served = reloaded.session().estimate_one(query, spec)
        direct = store.session().estimate_one(query, spec)
        assert served.ok and direct.ok
        assert served.estimate == direct.estimate


class TestDeltaChainsOnDisk:
    def test_chain_replays_and_compacts(self, tmp_path):
        graph = running_example_graph()
        store = example_store()
        store.save(tmp_path)
        rng = random.Random(11)
        current = graph
        for _ in range(3):
            store = StatisticsStore.load(tmp_path, graph=current)
            batch = random_update_batch(current, rng, 3, 2)
            apply_updates(
                store, batch, directory=tmp_path,
                compact_threshold=NO_COMPACT,
            )
            current = store.graph
        cold = build_statistics(
            current, StatsBuildConfig(h=2, molp_h=2), dataset_name="example"
        )
        reloaded = StatisticsStore.load(tmp_path)
        assert reloaded.manifest.generation == 3
        assert reloaded.markov.to_artifact() == cold.markov.to_artifact()
        assert reloaded.degrees.to_artifact() == cold.degrees.to_artifact()
        assert_estimates_identical(reloaded, cold)

        replayed = replay_graph(graph, tmp_path)
        assert dataset_fingerprint(replayed) == dataset_fingerprint(current)

        summary = compact_artifact(tmp_path)
        assert summary["folded_generations"] == 3
        compacted = StatisticsStore.load(tmp_path)
        assert compacted.markov.to_artifact() == cold.markov.to_artifact()
        assert compacted.degrees.to_artifact() == cold.degrees.to_artifact()
        # The update logs survive compaction, so the graph remains
        # re-derivable from the base dataset.
        assert dataset_fingerprint(
            replay_graph(graph, tmp_path)
        ) == dataset_fingerprint(current)

    def test_in_memory_apply_then_save_is_loadable(self, tmp_path):
        """directory=None persists no patch file, so the lineage must
        mark the generation folded — a later save() has to produce an
        artifact that loads without hunting for deltas/0001.json."""
        graph = running_example_graph()
        store = example_store(baselines=False)
        apply_updates(
            store,
            UpdateBatch([["+", 0, 5, "B"]]),
            compact_threshold=NO_COMPACT,
        )
        store.save(tmp_path)
        loaded = StatisticsStore.load(tmp_path)
        assert loaded.manifest.generation == 1
        assert loaded.manifest.compacted_generation == 1
        assert loaded.markov.to_artifact() == store.markov.to_artifact()
        # Graph re-derivation is honestly refused: no log was persisted.
        with pytest.raises(DatasetError, match="in-memory"):
            replay_graph(graph, tmp_path)

    def test_fingerprint_checked_against_mutated_graph(self, tmp_path):
        graph = running_example_graph()
        store = example_store(baselines=False)
        store.save(tmp_path)
        store = StatisticsStore.load(tmp_path, graph=graph)
        apply_updates(
            store,
            UpdateBatch([["+", 0, 5, "B"]]),
            directory=tmp_path,
            compact_threshold=NO_COMPACT,
        )
        # The pre-update graph no longer matches the artifact.
        with pytest.raises(DatasetError, match="different dataset"):
            StatisticsStore.load(tmp_path, graph=graph)
        StatisticsStore.load(tmp_path, graph=store.graph)

    def test_broken_lineage_is_rejected(self, tmp_path):
        graph = running_example_graph()
        store = example_store(baselines=False)
        store.save(tmp_path)
        store = StatisticsStore.load(tmp_path, graph=graph)
        apply_updates(
            store,
            UpdateBatch([["+", 0, 5, "B"]]),
            directory=tmp_path,
            compact_threshold=NO_COMPACT,
        )
        manifest_path = tmp_path / "manifest.json"
        import json

        payload = json.loads(manifest_path.read_text())
        payload["deltas"][0]["parent_fingerprint"] = "bogus"
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(DatasetError, match="lineage"):
            StatisticsStore.load(tmp_path)
