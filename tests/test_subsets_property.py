"""Property tests for connected-subset enumeration and CEG_O coverage.

``connected_edge_subsets`` underlies both CEG builders; its correctness
is checked against brute-force subset filtering, and CEG_O's vertex set
is checked to be exactly the reachable connected subsets.
"""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import QueryPattern, templates


@st.composite
def small_connected_patterns(draw):
    num_edges = draw(st.integers(min_value=1, max_value=6))
    edges = [("v0", "v1", "?0")]
    variables = ["v0", "v1"]
    for i in range(1, num_edges):
        anchor = draw(st.sampled_from(variables))
        if draw(st.booleans()):
            other = f"v{len(variables)}"
            variables.append(other)
        else:
            other = draw(st.sampled_from(variables))
        candidate = (
            (anchor, other, f"?{i}")
            if draw(st.booleans())
            else (other, anchor, f"?{i}")
        )
        edges.append(candidate)
    return QueryPattern(edges)


def _bruteforce_connected_subsets(pattern, max_size=None):
    indexes = range(len(pattern))
    limit = len(pattern) if max_size is None else max_size
    found = set()
    for size in range(1, limit + 1):
        for combo in combinations(indexes, size):
            if pattern.is_connected_subset(combo):
                found.add(frozenset(combo))
    return found


class TestConnectedSubsets:
    @given(small_connected_patterns())
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, pattern):
        fast = set(pattern.connected_edge_subsets())
        slow = _bruteforce_connected_subsets(pattern)
        assert fast == slow

    @given(small_connected_patterns(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_max_size_respected(self, pattern, max_size):
        fast = set(pattern.connected_edge_subsets(max_size=max_size))
        slow = _bruteforce_connected_subsets(pattern, max_size)
        assert fast == slow

    def test_star_all_subsets_connected(self):
        star = templates.star(4)
        # Every non-empty subset of a star is connected through the hub.
        assert len(star.connected_edge_subsets()) == 2 ** 4 - 1

    def test_path_subset_count(self):
        # Connected subsets of a k-path are its contiguous runs.
        path = templates.path(5)
        expected = 5 + 4 + 3 + 2 + 1
        assert len(path.connected_edge_subsets()) == expected


class TestCegOVertexCoverage:
    def test_vertices_are_connected_subsets(self, tiny_graph):
        from repro.catalog import MarkovTable
        from repro.core import build_ceg_o
        from repro.query import parse_pattern

        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        ceg = build_ceg_o(query, MarkovTable(tiny_graph, h=2))
        for node in ceg.nodes:
            assert query.is_connected_subset(node)

    def test_ranks_match_subset_sizes(self, tiny_graph):
        from repro.catalog import MarkovTable
        from repro.core import build_ceg_o
        from repro.query import parse_pattern

        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        ceg = build_ceg_o(query, MarkovTable(tiny_graph, h=2))
        for node in ceg.nodes:
            assert ceg.rank(node) == len(node)
