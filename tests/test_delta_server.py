"""Live tenant refresh: the serving tier picks up delta chains.

Covers the registry's copy-on-write ``apply_deltas`` path, the
``apply_deltas`` wire verb, the extended ``stats`` verb fields
(artifact generation, fingerprints, last-reload/last-delta timestamps)
and the served-floats half of the differential gate: estimates from a
live-refreshed tenant equal a cold in-process rebuild on the mutated
graph, bit for bit.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets.presets import running_example_graph
from repro.delta import UpdateBatch, apply_updates
from repro.errors import DatasetError
from repro.query.parser import parse_pattern
from repro.server import EstimationClient, ServerError, StoreRegistry, ThreadedServer
from repro.service.session import EstimatorSpec
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics

NINE_PLUS_MOLP = tuple(
    f"{'all-hops' if hop == 'all' else hop + '-hop'}-{aggr}"
    for hop in ("max", "min", "all")
    for aggr in ("max", "min", "avg")
) + ("MOLP",)

BATCH = UpdateBatch(
    [["+", 0, 5, "B"], ["-", 3, 5, "B"], ["+", 6, 8, "C"], ["+", 12, 0, "A"]]
)


@pytest.fixture()
def artifact_dir(tmp_path):
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(tmp_path)
    return tmp_path


def apply_batch_offline(artifact_dir, batch=BATCH):
    """What `repro updates apply` does, in-process for speed."""
    store = StatisticsStore.load(artifact_dir, graph=running_example_graph())
    outcome = apply_updates(
        store, batch, directory=artifact_dir, compact_threshold=100.0
    )
    return store, outcome


class TestRegistryApplyDeltas:
    def test_noop_when_current(self, artifact_dir):
        registry = StoreRegistry()
        entry = registry.load("example", artifact_dir)
        refreshed, applied = registry.apply_deltas("example")
        assert applied == 0
        assert refreshed is entry

    def test_refresh_applies_pending_generations(self, artifact_dir):
        registry = StoreRegistry()
        old = registry.load("example", artifact_dir)
        store, _ = apply_batch_offline(artifact_dir)
        refreshed, applied = registry.apply_deltas("example")
        assert applied == 1
        assert refreshed.generation == old.generation + 1
        assert refreshed.store.manifest.generation == 1
        assert refreshed.fingerprint == store.manifest.dataset_fingerprint
        # Copy-on-write: the superseded entry still serves the old data.
        assert old.store.manifest.generation == 0
        assert old.fingerprint != refreshed.fingerprint
        assert (
            old.store.markov.to_artifact()
            != refreshed.store.markov.to_artifact()
        )

    def test_refresh_matches_cold_rebuild_floats(self, artifact_dir):
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        store, _ = apply_batch_offline(artifact_dir)
        refreshed, _ = registry.apply_deltas("example")
        cold = build_statistics(store.graph, StatsBuildConfig(h=2, molp_h=2))
        session = cold.session()
        for text in ("a -[A]-> b -[B]-> c", "x -[B]-> y -[C]-> z"):
            query = parse_pattern(text)
            for name in NINE_PLUS_MOLP:
                spec = EstimatorSpec.from_name(name)
                served = refreshed.session.estimate_one(query, spec)
                expected = session.estimate_one(query, spec)
                assert served.ok and expected.ok, (text, name)
                assert served.estimate == expected.estimate, (text, name)

    def test_unknown_tenant_raises(self, artifact_dir):
        registry = StoreRegistry()
        with pytest.raises(DatasetError, match="unknown tenant"):
            registry.apply_deltas("nope")

    def test_concurrent_reload_during_refresh_raises(
        self, artifact_dir, monkeypatch
    ):
        """A clone of a superseded entry must never be published.

        The refresh replays patches onto a clone of the entry captured
        at call time; if a reload swaps the tenant mid-replay, quietly
        publishing the clone would revert the tenant to pre-reload
        state under a higher generation.
        """
        import repro.delta.deltafile as deltafile

        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        apply_batch_offline(artifact_dir)
        original = deltafile.read_delta
        raced = []

        def read_and_race(directory, file):
            payload = original(directory, file)
            if not raced:  # reload's own load also reads deltas
                raced.append(True)
                # Simulate a reload winning the race mid-replay.
                registry.reload("example", allow_fingerprint_change=True)
            return payload

        monkeypatch.setattr(deltafile, "read_delta", read_and_race)
        with pytest.raises(DatasetError, match="changed during"):
            registry.apply_deltas("example")
        # The reload's entry survived untouched.
        assert registry.get("example").store.manifest.generation == 1

    def test_compacted_past_served_falls_back_to_reload(self, artifact_dir):
        from repro.delta import compact_artifact

        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        apply_batch_offline(artifact_dir)
        compact_artifact(artifact_dir)
        refreshed, applied = registry.apply_deltas("example")
        assert applied == 1
        assert refreshed.store.manifest.generation == 1
        assert refreshed.store.manifest.compacted_generation == 1


class TestServerVerb:
    def test_live_refresh_over_the_wire(self, artifact_dir):
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        with ThreadedServer(registry) as server:
            with EstimationClient(server.host, server.port) as client:
                noop = client.apply_deltas("example")
                assert noop["applied"] == 0

                store, _ = apply_batch_offline(artifact_dir)
                refreshed = client.apply_deltas("example")
                assert refreshed["applied"] == 1
                assert refreshed["artifact_generation"] == 1
                assert (
                    refreshed["fingerprint"]
                    == store.manifest.dataset_fingerprint
                )

                cold = build_statistics(
                    store.graph, StatsBuildConfig(h=2, molp_h=2)
                )
                session = cold.session()
                query = parse_pattern("a -[A]-> b -[B]-> c")
                result = client.estimate(
                    "example", "a -[A]-> b -[B]-> c", NINE_PLUS_MOLP
                )
                assert not result["errors"]
                for name, value in result["estimates"].items():
                    expected = session.estimate_one(
                        query, EstimatorSpec.from_name(name)
                    )
                    assert expected.ok and expected.estimate == value, name

                stats = client.stats()["tenants"]["example"]
                assert stats["artifact_generation"] == 1
                assert stats["generation"] == 2
                assert stats["base_fingerprint"] != stats["fingerprint"]
                assert stats["last_delta_at"] is not None
                assert stats["last_reload_at"] is not None

    def test_unknown_tenant_is_exit_2(self, artifact_dir):
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        with ThreadedServer(registry) as server:
            with EstimationClient(server.host, server.port) as client:
                with pytest.raises(ServerError) as info:
                    client.apply_deltas("nope")
                assert info.value.code == "unknown_tenant"
                assert info.value.exit_code == 2

    def test_refresh_mid_traffic_never_fails_requests(self, artifact_dir):
        """Hammer estimates while a delta refresh swaps the tenant."""
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        apply_batch_offline(artifact_dir)
        errors: list[Exception] = []
        stop = threading.Event()

        def hammer():
            try:
                with EstimationClient(server.host, server.port) as client:
                    while not stop.is_set():
                        result = client.estimate(
                            "example", "a -[A]-> b -[B]-> c", ["max-hop-max"]
                        )
                        assert result["estimates"]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with ThreadedServer(registry) as server:
            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                with EstimationClient(server.host, server.port) as client:
                    refreshed = client.apply_deltas("example")
                    assert refreshed["applied"] == 1
            finally:
                stop.set()
                for thread in threads:
                    thread.join(30)
        assert not errors
