"""Cache behavior of the estimation service.

Covers the LRU itself (hit/miss/eviction accounting, recency refresh),
the session's two-level cache (canonical-shape sharing across variable
renamings), batch determinism under threading, and estimator-spec
parsing.
"""

import math

import pytest

from repro.datasets.workloads import WorkloadQuery
from repro.errors import EstimationError
from repro.experiments import run_harness, run_harness_batched
from repro.query import parse_pattern
from repro.service import (
    EstimationSession,
    EstimatorSpec,
    LRUCache,
)


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.evictions == 0
        assert stats.size == 1 and stats.capacity == 4
        assert stats.hit_rate == 0.5

    def test_eviction_at_capacity_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the least recently used
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "a" is now most recent
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_put_refreshes_existing_without_eviction(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.stats().evictions == 0
        cache.put("c", 3)  # evicts "b" ("a" was refreshed by the put)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_unused_cache_hit_rate_is_nan(self):
        assert math.isnan(LRUCache(capacity=1).stats().hit_rate)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestEstimatorSpec:
    def test_all_nine_names_round_trip(self):
        for hop in ("max", "min", "all"):
            for agg in ("max", "min", "avg"):
                spec = EstimatorSpec(path_length=hop, aggregator=agg)
                assert EstimatorSpec.from_name(spec.name) == spec

    def test_molp_names(self):
        assert EstimatorSpec.from_name("MOLP") == EstimatorSpec(kind="molp")
        sketch = EstimatorSpec.from_name("MOLP-sketch4")
        assert sketch.sketch_budget == 4 and sketch.name == "MOLP-sketch4"

    def test_ocr_suffix(self):
        spec = EstimatorSpec.from_name("max-hop-max+ocr")
        assert spec.use_cycle_rates and spec.name == "max-hop-max+ocr"

    @pytest.mark.parametrize(
        "bad", ["bogus", "max-hop-bogus", "mid-hop-max", "MOLP-sketchX", ""]
    )
    def test_bad_names_raise(self, bad):
        with pytest.raises(ValueError):
            EstimatorSpec.from_name(bad)

    def test_bad_fields_raise(self):
        with pytest.raises(ValueError):
            EstimatorSpec(kind="bogus")
        with pytest.raises(ValueError):
            EstimatorSpec(path_length="bogus")
        with pytest.raises(ValueError):
            EstimatorSpec(kind="molp", sketch_budget=0)


class TestSessionCaching:
    def test_renamed_patterns_share_one_entry(self, small_random_graph):
        """a1-A->a2-B->a3 and x-A->y-B->z hit the same cache entries."""
        labels = sorted(small_random_graph.labels)[:2]
        a, b = labels
        session = EstimationSession(small_random_graph, h=2)
        first = parse_pattern(f"a1 -[{a}]-> a2 -[{b}]-> a3")
        second = parse_pattern(f"x -[{a}]-> y -[{b}]-> z")
        value_first = session.estimate(first, "max-hop-max")
        skeletons = session.stats().skeletons
        assert skeletons.misses == 1 and skeletons.size == 1
        value_second = session.estimate(second, "max-hop-max")
        assert value_second == value_first
        stats = session.stats()
        # The renamed query was served from the estimate cache: no new
        # skeleton, no extra skeleton lookup, one estimate hit.
        assert stats.skeletons.size == 1
        assert stats.skeletons.misses == 1
        assert stats.estimates.hits == 1
        assert stats.estimates.misses == 1

    def test_hit_miss_counters_per_spec(self, small_random_graph):
        labels = sorted(small_random_graph.labels)[:2]
        a, b = labels
        session = EstimationSession(small_random_graph, h=2)
        query = parse_pattern(f"a -[{a}]-> b -[{b}]-> c")
        session.estimate(query, "max-hop-max")
        session.estimate(query, "min-hop-min")  # same skeleton, new estimate
        session.estimate(query, "max-hop-max")  # pure estimate hit
        stats = session.stats()
        assert stats.skeletons.misses == 1
        assert stats.skeletons.hits == 1
        assert stats.estimates.misses == 2
        assert stats.estimates.hits == 1

    def test_estimate_cache_evicts_at_capacity(self, small_random_graph):
        labels = sorted(small_random_graph.labels)
        session = EstimationSession(
            small_random_graph, h=2, estimate_capacity=2
        )
        queries = [
            parse_pattern(f"a -[{label}]-> b") for label in labels[:3]
        ]
        for query in queries:
            session.estimate(query)
        stats = session.stats()
        assert stats.estimates.evictions == 1
        assert stats.estimates.size == 2
        # The evicted (oldest) entry is recomputed on re-request.
        session.estimate(queries[0])
        assert session.stats().estimates.misses == 4

    def test_clear_caches(self, small_random_graph):
        label = sorted(small_random_graph.labels)[0]
        session = EstimationSession(small_random_graph, h=2)
        query = parse_pattern(f"a -[{label}]-> b")
        session.estimate(query)
        session.clear_caches()
        assert session.stats().estimates.size == 0
        assert session.stats().skeletons.size == 0
        session.estimate(query)
        assert session.stats().estimates.misses == 2

    def test_ocr_spec_without_rates_raises(self, small_random_graph):
        session = EstimationSession(small_random_graph, h=2)
        label = sorted(small_random_graph.labels)[0]
        with pytest.raises(ValueError):
            session.estimate(parse_pattern(f"a -[{label}]-> b"),
                             "max-hop-max+ocr")
        with pytest.raises(ValueError):
            session.ceg_for(parse_pattern(f"a -[{label}]-> b"),
                            use_cycle_rates=True)


class TestBatch:
    def test_batch_ordering_is_deterministic(self, small_random_graph):
        labels = sorted(small_random_graph.labels)
        patterns = [
            parse_pattern(f"a -[{x}]-> b -[{y}]-> c")
            for x in labels[:3]
            for y in labels[:3]
        ]
        specs = ("max-hop-max", "min-hop-min", "MOLP")
        serial = EstimationSession(small_random_graph, h=2).estimate_batch(
            patterns, specs=specs, max_workers=1
        )
        threaded = EstimationSession(small_random_graph, h=2).estimate_batch(
            patterns, specs=specs, max_workers=4
        )
        assert serial.specs == threaded.specs == list(specs)
        assert [i.index for i in serial.items] == [
            i.index for i in threaded.items
        ]
        assert [i.estimator for i in serial.items] == [
            i.estimator for i in threaded.items
        ]
        assert [i.estimate for i in serial.items] == [
            i.estimate for i in threaded.items
        ]
        # Query-major layout: item(i, spec) addresses the right cell.
        for index in range(len(patterns)):
            for spec in specs:
                cell = serial.item(index, spec)
                assert cell.index == index and cell.estimator == spec

    def test_batch_captures_per_query_failures(self, small_random_graph):
        labels = sorted(small_random_graph.labels)[:2]
        a, b = labels
        disconnected = parse_pattern(f"a -[{a}]-> b, c -[{b}]-> d")
        good = parse_pattern(f"a -[{a}]-> b")
        session = EstimationSession(small_random_graph, h=2)
        batch = session.estimate_batch([good, disconnected, good])
        assert not batch.ok
        assert batch.item(0, "max-hop-max").ok
        assert batch.item(2, "max-hop-max").ok
        failed = batch.item(1, "max-hop-max")
        assert failed.estimate is None
        assert "EstimationError" in failed.error
        assert batch.estimates_for("max-hop-max")[1] is None
        # The raising path is identical outside a batch.
        with pytest.raises(EstimationError):
            session.estimate(disconnected)

    def test_duplicate_specs_rejected(self, small_random_graph):
        session = EstimationSession(small_random_graph, h=2)
        label = sorted(small_random_graph.labels)[0]
        with pytest.raises(ValueError):
            session.estimate_batch(
                [parse_pattern(f"a -[{label}]-> b")],
                specs=("max-hop-max", "max-hop-max"),
            )

    def test_misconfigured_spec_fails_fast_not_mid_batch(
        self, small_random_graph
    ):
        """A '+ocr' spec on a rate-less session is rejected before fan-out."""
        session = EstimationSession(small_random_graph, h=2)
        label = sorted(small_random_graph.labels)[0]
        with pytest.raises(ValueError, match="cycle rates"):
            session.estimate_batch(
                [parse_pattern(f"a -[{label}]-> b")],
                specs=("max-hop-max", "max-hop-max+ocr"),
            )


class TestRunHarnessBatched:
    def _workload(self, graph):
        labels = sorted(graph.labels)[:2]
        a, b = labels
        return [
            WorkloadQuery("q1", "t", parse_pattern(f"a -[{a}]-> b -[{b}]-> c"),
                          5.0),
            WorkloadQuery("bad", "t",
                          parse_pattern(f"a -[{a}]-> b, c -[{b}]-> d"), 2.0),
            WorkloadQuery("q2", "t", parse_pattern(f"x -[{a}]-> y -[{b}]-> z"),
                          7.0),
        ]

    def test_matches_run_harness_semantics(self, small_random_graph):
        workload = self._workload(small_random_graph)
        specs = ("max-hop-max", "MOLP")
        batched = run_harness_batched(
            workload, EstimationSession(small_random_graph, h=2), specs
        )
        direct = run_harness(
            workload,
            EstimationSession(small_random_graph, h=2).estimators(specs),
        )
        assert batched.skipped_queries == direct.skipped_queries
        assert batched.failures == direct.failures
        assert batched.estimates == direct.estimates
        assert set(batched.summaries()) == set(specs)

    def test_drop_on_failure(self, small_random_graph):
        workload = self._workload(small_random_graph)
        session = EstimationSession(small_random_graph, h=2)
        dropped = run_harness_batched(workload, session, ("max-hop-max",))
        assert dropped.skipped_queries == ["bad"]
        assert dropped.failures["max-hop-max"] == 1
        truths = [pair[1] for pair in dropped.estimates["max-hop-max"]]
        assert truths == [5.0, 7.0]
        kept = run_harness_batched(
            workload, session, ("max-hop-max",), drop_on_failure=False
        )
        assert kept.skipped_queries == []
        assert len(kept.estimates["max-hop-max"]) == 2
