"""The paper's running example (Figures 1, 3, 4): the fork query Q5f.

The exact Figure-2 graph is only available as an image, so these tests
rebuild the *structure* of the running example on a concrete graph and
verify the claims the text makes about it:

* with a size-3 Markov table, ``CEG_O`` of Q5f has exactly the paper's
  two distinct estimates — the short-hop formula
  ``|ABC| * |{C,D,E}-star| / |C|`` and the long-hop formula
  ``|ABC| * |ABD|/|AB| * |ABE|/|AB|`` (§4.2);
* the short-hop path has fewer CEG edges than the long-hop path;
* with a size-2 table the formula space explodes (many paths) while the
  estimates stay few — the §1 observation that one query admits
  hundreds of formulas.
"""

import pytest

from repro.catalog import MarkovTable
from repro.core import build_ceg_o, distinct_estimates, hop_statistics
from repro.graph import LabeledDiGraph
from repro.query import QueryPattern, templates


@pytest.fixture(scope="module")
def running_graph() -> LabeledDiGraph:
    """A graph shaped like Figure 2: A->B chains into a C/D/E fork."""
    triples = []
    for u, v in [(0, 3), (1, 3), (2, 4), (0, 4)]:
        triples.append((u, v, "A"))
    for u, v in [(3, 5), (4, 5), (3, 6), (4, 6)]:
        triples.append((u, v, "B"))
    for u, v in [(5, 7), (5, 8), (6, 7)]:
        triples.append((u, v, "C"))
    for u, v in [(5, 9), (6, 9), (6, 10)]:
        triples.append((u, v, "D"))
    for u, v in [(5, 11), (6, 11), (5, 12), (6, 12)]:
        triples.append((u, v, "E"))
    return LabeledDiGraph.from_triples(triples, num_vertices=13)


@pytest.fixture(scope="module")
def q5f() -> QueryPattern:
    return templates.fork(2, 3).with_labels(["A", "B", "C", "D", "E"])


class TestFigure3:
    """CEG_O with h=3 (Figure 3)."""

    def test_two_distinct_estimates(self, running_graph, q5f):
        markov = MarkovTable(running_graph, h=3)
        estimates = distinct_estimates(build_ceg_o(q5f, markov))
        assert len(estimates) == 2

    def test_short_and_long_hop_formulas(self, running_graph, q5f):
        markov = MarkovTable(running_graph, h=3)
        abc = markov.cardinality(
            QueryPattern([("a", "b", "A"), ("b", "c", "B"), ("c", "d", "C")])
        )
        ab = markov.cardinality(QueryPattern([("a", "b", "A"), ("b", "c", "B")]))
        abd = markov.cardinality(
            QueryPattern([("a", "b", "A"), ("b", "c", "B"), ("c", "d", "D")])
        )
        abe = markov.cardinality(
            QueryPattern([("a", "b", "A"), ("b", "c", "B"), ("c", "d", "E")])
        )
        c = markov.cardinality(QueryPattern([("c", "d", "C")]))
        cde_star = markov.cardinality(
            QueryPattern([("c", "d", "C"), ("c", "e", "D"), ("c", "f", "E")])
        )
        long_hop = abc * (abd / ab) * (abe / ab)
        short_hop = abc * (cde_star / c)
        estimates = sorted(
            distinct_estimates(build_ceg_o(q5f, MarkovTable(running_graph, h=3)))
        )
        expected = sorted([long_hop, short_hop])
        assert estimates[0] == pytest.approx(expected[0])
        assert estimates[1] == pytest.approx(expected[1])

    def test_hop_lengths(self, running_graph, q5f):
        """The short-hop path has 2 edges; the long-hop path has 3."""
        markov = MarkovTable(running_graph, h=3)
        per_hop = hop_statistics(build_ceg_o(q5f, markov))
        assert set(per_hop) == {2, 3}


class TestFigure4:
    """CEG_O with h=2 (Figure 4): many formulas, few estimates."""

    def test_many_paths_few_estimates(self, running_graph, q5f):
        markov = MarkovTable(running_graph, h=2)
        ceg = build_ceg_o(q5f, markov)
        per_hop = hop_statistics(ceg)
        total_paths = sum(stats.count for stats in per_hop.values())
        estimates = distinct_estimates(ceg)
        assert total_paths > 30  # the §1 formula-space explosion
        assert len(estimates) < total_paths

    def test_all_paths_have_four_hops(self, running_graph, q5f):
        """With h=2 every path extends one atom at a time after the
        2-atom seed: 1 seed hop + 3 extension hops."""
        markov = MarkovTable(running_graph, h=2)
        per_hop = hop_statistics(build_ceg_o(q5f, markov))
        assert set(per_hop) == {4}


class TestMarkovExampleQ3p:
    """§4.1's Q3p walkthrough: estimate = |AB| * |BC| / |B|."""

    def test_estimate_formula(self, running_graph):
        markov = MarkovTable(running_graph, h=2)
        q3p = templates.path(3).with_labels(["A", "B", "C"])
        ab = markov.cardinality(templates.path(2).with_labels(["A", "B"]))
        bc = markov.cardinality(templates.path(2).with_labels(["B", "C"]))
        b = markov.cardinality(templates.path(1).with_labels(["B"]))
        expected = ab * (bc / b)
        estimates = distinct_estimates(build_ceg_o(q3p, markov))
        assert any(e == pytest.approx(expected) for e in estimates)

    def test_underestimation_direction(self, running_graph):
        """On correlated data the conditional-independence formula
        underestimates, as in the paper's 6-vs-7 example."""
        from repro.engine import count_pattern

        markov = MarkovTable(running_graph, h=2)
        q3p = templates.path(3).with_labels(["A", "B", "C"])
        truth = count_pattern(running_graph, q3p)
        estimates = distinct_estimates(build_ceg_o(q3p, markov))
        assert truth > 0
        # All h=2 estimates of this 3-path coincide; direction checked
        # against the exact count.
        assert len(estimates) >= 1
