"""Tests for the CEG_M builder, the lazy Dijkstra, and MolpEdge metadata."""

import pytest

from repro.catalog import DegreeCatalog
from repro.core import (
    build_ceg_m,
    min_weight_path,
    molp_bound,
    molp_min_path,
)
from repro.core.ceg_m import MolpEdge
from repro.engine import count_pattern
from repro.errors import EstimationError
from repro.query import QueryPattern, parse_pattern, templates


class TestMolpMinPath:
    def test_path_metadata_chains(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c")
        catalog = DegreeCatalog(tiny_graph, h=1)
        bound, path = molp_min_path(query, catalog)
        assert bound > 0
        assert path[0].source_attrs == frozenset()
        assert path[-1].target_attrs == frozenset(query.variables)
        for first, second in zip(path, path[1:]):
            assert first.target_attrs == second.source_attrs

    def test_path_product_equals_bound(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        catalog = DegreeCatalog(tiny_graph, h=1)
        bound, path = molp_min_path(query, catalog)
        product = 1.0
        for edge in path:
            product *= edge.rate
        assert product == pytest.approx(bound)

    def test_first_hop_is_unbound(self, tiny_graph):
        """The path starts at ∅, so its first edge conditions on X=∅."""
        query = parse_pattern("a -[A]-> b -[B]-> c")
        catalog = DegreeCatalog(tiny_graph, h=1)
        _, path = molp_min_path(query, catalog)
        assert not path[0].is_bound

    def test_empty_relation_returns_zero(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[Z]-> c")
        catalog = DegreeCatalog(tiny_graph, h=1)
        bound, path = molp_min_path(query, catalog)
        assert bound == 0.0 and path == []

    def test_bound_upper_bounds_truth(self, medium_random_graph):
        labels = list(medium_random_graph.labels)
        catalog = DegreeCatalog(medium_random_graph, h=2)
        for template in (templates.path(3), templates.star(3),
                         templates.fork(1, 2)):
            query = template.with_labels(labels[: len(template)])
            truth = count_pattern(medium_random_graph, query)
            assert molp_bound(query, catalog) >= truth - 1e-6


class TestExplicitCegM:
    def test_explicit_matches_lazy(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c")
        catalog = DegreeCatalog(tiny_graph, h=1)
        lazy = molp_bound(query, catalog)
        ceg = build_ceg_m(query, catalog)
        explicit, _ = min_weight_path(ceg)
        assert explicit == pytest.approx(lazy)

    def test_explicit_matches_lazy_with_joins(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        catalog = DegreeCatalog(tiny_graph, h=2)
        lazy = molp_bound(query, catalog)
        ceg = build_ceg_m(query, catalog)
        explicit, _ = min_weight_path(ceg)
        assert explicit == pytest.approx(lazy)

    def test_payloads_are_molp_edges(self, tiny_graph):
        query = parse_pattern("a -[A]-> b")
        catalog = DegreeCatalog(tiny_graph, h=1)
        ceg = build_ceg_m(query, catalog)
        for edge in ceg.iter_edges():
            assert isinstance(edge.payload, MolpEdge)
            assert edge.payload.rate == edge.rate

    def test_attribute_cap(self, tiny_graph):
        query = templates.star(15).with_labels(["A"] * 15)
        catalog = DegreeCatalog(tiny_graph, h=1)
        with pytest.raises(EstimationError):
            build_ceg_m(query, catalog)

    def test_rightmost_path_semantics(self, tiny_graph):
        """Any (∅, A) path multiplies a relation size by max degrees —
        Observation 1's reading of Figure 7."""
        from repro.core import distinct_estimates

        query = parse_pattern("a -[A]-> b -[B]-> c")
        catalog = DegreeCatalog(tiny_graph, h=1)
        ceg = build_ceg_m(query, catalog)
        truth = count_pattern(tiny_graph, query)
        for estimate in distinct_estimates(ceg, cap=500):
            assert estimate >= truth - 1e-6


class TestMolpEdge:
    def test_extension_attrs(self):
        edge = MolpEdge(
            source_attrs=frozenset({"a"}),
            target_attrs=frozenset({"a", "b"}),
            x=frozenset({"a"}),
            y=frozenset({"a", "b"}),
            relation=QueryPattern([("a", "b", "A")]),
            rate=3.0,
        )
        assert edge.extension_attrs == frozenset({"b"})
        assert edge.is_bound

    def test_unbound_edge(self):
        edge = MolpEdge(
            source_attrs=frozenset(),
            target_attrs=frozenset({"a", "b"}),
            x=frozenset(),
            y=frozenset({"a", "b"}),
            relation=QueryPattern([("a", "b", "A")]),
            rate=5.0,
        )
        assert not edge.is_bound


class TestMarkovPersistence:
    def test_roundtrip(self, tiny_graph, tmp_path):
        from repro.catalog import MarkovTable

        table = MarkovTable(tiny_graph, h=2)
        table.cardinality(parse_pattern("x -[A]-> y"))
        table.cardinality(parse_pattern("x -[A]-> y -[B]-> z"))
        path = tmp_path / "markov.json"
        table.save(path)
        loaded = MarkovTable.load(path, tiny_graph)
        assert loaded.h == 2
        assert loaded.num_entries == table.num_entries
        assert loaded.cardinality(parse_pattern("x -[A]-> y")) == 3

    def test_loaded_table_still_lazy(self, tiny_graph, tmp_path):
        from repro.catalog import MarkovTable

        table = MarkovTable(tiny_graph, h=2)
        path = tmp_path / "markov.json"
        table.save(path)
        loaded = MarkovTable.load(path, tiny_graph)
        assert loaded.num_entries == 0
        assert loaded.cardinality(parse_pattern("x -[B]-> y")) == 3

    def test_invalid_file_rejected(self, tiny_graph, tmp_path):
        from repro.catalog import MarkovTable
        from repro.errors import DatasetError

        path = tmp_path / "broken.json"
        path.write_text("not json")
        with pytest.raises(DatasetError):
            MarkovTable.load(path, tiny_graph)
