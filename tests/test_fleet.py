"""Fleet tests: consistent hashing, restart catch-up, chaos under load.

The tentpole's acceptance surface:

* the consistent-hash tenant assignment is deterministic across
  processes and moves few tenants when the fleet resizes;
* ``StoreRegistry.refresh_if_stale`` converges a fork-time registry
  snapshot with delta batches applied on disk since (the restarted
  worker's catch-up path);
* a live ``repro serve --workers N`` fleet answers the ``fleet`` verb,
  routes by tenant affinity, fans control verbs out, and aggregates
  ``stats``;
* chaos: SIGKILL one worker under concurrent load — the supervisor
  restarts it, no request is silently lost (each either succeeds or
  fails with a typed transient), and post-restart floats stay
  bit-identical to the in-process session;
* SIGTERM drains the whole fleet cleanly with empty stderr.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.datasets.presets import running_example_graph
from repro.delta import UpdateBatch, apply_updates
from repro.query.parser import parse_pattern
from repro.server import (
    FleetClient,
    ServerError,
    ServerUnavailable,
    StoreRegistry,
    assign_tenants,
    wait_until_ready,
)
from repro.service.session import EstimatorSpec
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics

SRC = Path(__file__).resolve().parent.parent / "src"

ALL_SPECS = [
    f"{hop}-{agg}"
    for hop in ("max-hop", "min-hop", "all-hops")
    for agg in ("max", "min", "avg")
] + ["MOLP"]

QUERIES = [
    "a -[A]-> b -[B]-> c",
    "x -[B]-> y -[C]-> z",
    "u -[B]-> v, u -[B]-> w",
]


# ----------------------------------------------------------------------
# Consistent hashing (pure functions, no processes)
# ----------------------------------------------------------------------
class TestAssignment:
    def test_deterministic_and_in_range(self):
        tenants = [f"tenant-{i}" for i in range(50)]
        first = assign_tenants(tenants, 4)
        second = assign_tenants(tenants, 4)
        assert first == second, "assignment must be stable across calls"
        assert set(first) == set(tenants)
        assert all(0 <= index < 4 for index in first.values())

    def test_spreads_tenants_across_workers(self):
        tenants = [f"tenant-{i}" for i in range(64)]
        assignment = assign_tenants(tenants, 4)
        owners = set(assignment.values())
        assert owners == {0, 1, 2, 3}, (
            f"64 tenants landed on only {sorted(owners)} of 4 workers"
        )

    def test_resize_moves_a_minority(self):
        tenants = [f"tenant-{i}" for i in range(200)]
        before = assign_tenants(tenants, 4)
        after = assign_tenants(tenants, 5)
        moved = sum(1 for t in tenants if before[t] != after[t])
        # Naive modulo hashing moves ~4/5 of tenants; the ring should
        # move roughly the 1/5 arc the new worker takes over.
        assert moved < len(tenants) // 2, (
            f"{moved}/{len(tenants)} tenants moved on a 4→5 resize"
        )

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            assign_tenants(["a"], 0)


# ----------------------------------------------------------------------
# Restart catch-up: refresh_if_stale
# ----------------------------------------------------------------------
@pytest.fixture()
def artifact_dir(tmp_path):
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(tmp_path / "art")
    return tmp_path / "art"


BATCH = UpdateBatch(
    [["+", 0, 5, "B"], ["-", 3, 5, "B"], ["+", 6, 8, "C"]]
)


def apply_batch_offline(artifact_dir):
    """What ``repro updates apply`` does, in-process for speed."""
    store = StatisticsStore.load(artifact_dir, graph=running_example_graph())
    return apply_updates(
        store, BATCH, directory=artifact_dir, compact_threshold=100.0
    )


class TestRefreshIfStale:
    def test_noop_when_artifact_unchanged(self, artifact_dir):
        registry = StoreRegistry()
        entry = registry.load("example", artifact_dir)
        refreshed, applied = registry.refresh_if_stale("example")
        assert applied == 0
        assert refreshed is entry

    def test_catches_up_with_on_disk_deltas(self, artifact_dir):
        # A restarted worker's registry is the fork-time snapshot; the
        # artifact on disk may have absorbed delta batches meanwhile.
        registry = StoreRegistry()
        old = registry.load("example", artifact_dir)
        apply_batch_offline(artifact_dir)
        refreshed, applied = registry.refresh_if_stale("example")
        assert applied == 1
        assert refreshed.generation == old.generation + 1
        assert refreshed.store.manifest.generation == 1

    def test_unknown_tenant_raises(self, artifact_dir):
        from repro.errors import DatasetError

        registry = StoreRegistry()
        with pytest.raises(DatasetError):
            registry.refresh_if_stale("nope")


# ----------------------------------------------------------------------
# Live fleets (subprocess `repro serve --workers N`)
# ----------------------------------------------------------------------
class FleetProcess:
    """A ``repro serve --workers N`` subprocess plus its event stream."""

    def __init__(
        self,
        artifact_dir: Path,
        workers: int = 2,
        extra_args: list[str] | None = None,
    ):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--tenant", f"t1={artifact_dir}",
                "--tenant", f"t2={artifact_dir}",
                "--port", "0",
                "--workers", str(workers),
                *(extra_args or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": str(SRC)},
            text=True,
        )
        self.events: list[dict] = []
        self._events_lock = threading.Lock()
        self._reader = threading.Thread(target=self._read_events, daemon=True)
        self._reader.start()
        self.ready = self.wait_event(lambda e: e["event"] == "ready", 60.0)
        self.host = self.ready["host"]
        self.port = self.ready["port"]
        wait_until_ready(self.host, self.port, timeout=30.0)

    def _read_events(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.strip()
            if not line:
                continue
            with self._events_lock:
                self.events.append(json.loads(line))

    def wait_event(self, predicate, timeout: float) -> dict:
        deadline = time.monotonic() + timeout
        seen = 0
        while time.monotonic() < deadline:
            with self._events_lock:
                fresh = self.events[seen:]
                seen = len(self.events)
            for event in fresh:
                if predicate(event):
                    return event
            if self.proc.poll() is not None and seen == len(self.events):
                break
            time.sleep(0.02)
        raise AssertionError(
            f"fleet event did not arrive within {timeout}s; "
            f"saw {self.events}, rc={self.proc.poll()}"
        )

    def worker_pids(self) -> dict[int, int]:
        """Current pid per worker index, restart events applied."""
        pids = {w["index"]: w["pid"] for w in self.ready["workers"]}
        with self._events_lock:
            for event in self.events:
                if event["event"] == "worker-started":
                    pids[event["index"]] = event["pid"]
        return pids

    def finish(self, timeout: float = 30.0) -> tuple[int, str]:
        """Wait for exit; returns (returncode, stderr)."""
        self.proc.wait(timeout=timeout)
        self._reader.join(5.0)
        stderr = self.proc.stderr.read() if self.proc.stderr else ""
        return self.proc.returncode, stderr

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5)
        if self.proc.stdout:
            self.proc.stdout.close()
        if self.proc.stderr:
            self.proc.stderr.close()


@pytest.fixture()
def fleet(artifact_dir):
    fleet = FleetProcess(artifact_dir, workers=2)
    yield fleet
    fleet.cleanup()


@pytest.fixture()
def reference_session(artifact_dir):
    return StatisticsStore.load(artifact_dir).session()


class TestFleetServing:
    def test_topology_and_affinity_routing(self, fleet, reference_session):
        patterns = [parse_pattern(text) for text in QUERIES]
        batch = reference_session.estimate_batch(patterns, specs=ALL_SPECS)
        with FleetClient(fleet.host, fleet.port) as client:
            info = client.fleet()
            assert info["fleet"] is True
            assert len(info["workers"]) == 2
            assert set(info["assignment"]) == {"t1", "t2"}
            # Every estimate, on both tenants, bit-identical in-process.
            for tenant in ("t1", "t2"):
                for index, text in enumerate(QUERIES):
                    served = client.estimate(tenant, text, ALL_SPECS)
                    for spec in ALL_SPECS:
                        cell = batch.item(index, spec)
                        if cell.ok:
                            assert served["estimates"][spec] == cell.estimate
                        else:
                            assert served["errors"][spec] == cell.error
            # stats fans out and aggregates: both workers report, and
            # each tenant's requests were counted on its home worker.
            stats = client.stats()
            assert stats["fleet"] is True
            aggregate = stats["aggregate"]
            assert aggregate["workers_reporting"] == 2
            for tenant in ("t1", "t2"):
                per_tenant = aggregate["tenants"][tenant]
                assert per_tenant["requests"] == len(QUERIES)
                assert per_tenant["ok"] == len(QUERIES)
                assert per_tenant["owner"] == info["assignment"][tenant]

    def test_scope_local_pins_to_one_worker(self, fleet):
        from repro.server import EstimationClient, protocol

        with EstimationClient(fleet.host, fleet.port) as client:
            response = client.request(
                {
                    "v": protocol.PROTOCOL_VERSION,
                    "verb": "stats",
                    "scope": "local",
                }
            )
            assert response["ok"]
            result = response["result"]
            # A local stats answer is one worker's flat snapshot, not
            # the fanned wrapper — the guard that fan-out cannot recurse.
            assert "fleet" not in result
            assert "admission" in result
            assert result["worker"]["index"] in (0, 1)

    def test_apply_deltas_fans_to_every_worker(self, fleet, artifact_dir):
        apply_batch_offline(artifact_dir)
        with FleetClient(fleet.host, fleet.port) as client:
            outcome = client.apply_deltas("t1")
            assert outcome["fleet"] is True
            assert outcome["ok"] is True
            assert len(outcome["workers"]) == 2
            for slot in outcome["workers"].values():
                assert slot["ok"], slot
                assert slot["result"]["applied"] == 1
                assert slot["result"]["artifact_generation"] == 1


class TestFleetChaos:
    def test_sigkill_under_load_restarts_and_loses_nothing(
        self, fleet, reference_session
    ):
        """The chaos satellite: kill -9 one worker mid-traffic."""
        outcomes: list[tuple[str, object]] = []
        outcomes_lock = threading.Lock()
        stop = threading.Event()

        def hammer(tenant: str) -> None:
            with FleetClient(fleet.host, fleet.port, timeout=10.0) as client:
                while not stop.is_set():
                    try:
                        result = client.estimate(tenant, QUERIES[0])
                        record = ("ok", result["estimates"]["max-hop-max"])
                    except ServerError as error:
                        record = ("server_error", error)
                    except ServerUnavailable as error:
                        record = ("unavailable", error)
                    with outcomes_lock:
                        outcomes.append(record)

        threads = [
            threading.Thread(target=hammer, args=(tenant,))
            for tenant in ("t1", "t2")
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.5)  # load is flowing
            victim = fleet.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            restarted = fleet.wait_event(
                lambda e: e["event"] == "worker-started" and e["index"] == 0,
                30.0,
            )
            assert restarted["pid"] != victim
            time.sleep(1.0)  # traffic over the restarted worker too
        finally:
            stop.set()
            for thread in threads:
                thread.join(30.0)
        exited = fleet.wait_event(
            lambda e: e["event"] == "worker-exited" and e["index"] == 0, 5.0
        )
        assert exited["exitcode"] not in (0, None)
        # No request silently lost: every outcome is a success or a
        # typed transient (exit-code-3 taxonomy) — never a wrong float,
        # an untyped error, or a hang.
        assert outcomes, "load generators recorded nothing"
        reference = reference_session.estimate_one(
            parse_pattern(QUERIES[0]),
            EstimatorSpec.from_name("max-hop-max"),
        ).estimate
        failures = []
        for kind, value in outcomes:
            if kind == "ok":
                if value != reference:
                    failures.append(f"wrong float {value!r}")
            elif kind == "server_error":
                if value.exit_code != 3:
                    failures.append(f"non-transient error {value}")
            # "unavailable" is the typed transient transport failure.
        assert not failures, failures[:5]
        ok_count = sum(1 for kind, _ in outcomes if kind == "ok")
        assert ok_count > 0, "no request succeeded under chaos"
        # Post-restart, the full fleet reports again and the restarted
        # worker serves bit-identical floats (asserted via `reference`
        # above for every post-kill success).
        with FleetClient(fleet.host, fleet.port) as client:
            stats = client.stats()
            assert stats["aggregate"]["workers_reporting"] == 2

    def test_sigterm_drains_fleet_cleanly(self, fleet):
        with FleetClient(fleet.host, fleet.port) as client:
            assert client.estimate("t1", QUERIES[0])["estimates"]
        fleet.proc.send_signal(signal.SIGTERM)
        fleet.wait_event(lambda e: e["event"] == "stopped", 30.0)
        returncode, stderr = fleet.finish()
        assert returncode == 0
        assert stderr == ""

    def test_shutdown_verb_stops_every_worker(self, fleet):
        with FleetClient(fleet.host, fleet.port) as client:
            outcome = client.shutdown()
            assert outcome["fleet"] is True
            assert outcome["ok"] is True
        fleet.wait_event(lambda e: e["event"] == "stopped", 30.0)
        returncode, stderr = fleet.finish()
        assert returncode == 0
        assert stderr == ""


# ----------------------------------------------------------------------
# Fleet observability: metrics fan-out + trace-id propagation
# ----------------------------------------------------------------------
@pytest.fixture()
def traced_fleet(artifact_dir, tmp_path):
    trace_log = tmp_path / "fleet-trace.ndjson"
    fleet = FleetProcess(
        artifact_dir, workers=2, extra_args=["--trace-log", str(trace_log)]
    )
    yield fleet, trace_log
    fleet.cleanup()


class TestFleetObservability:
    def test_metrics_fan_out_merges_worker_counters(self, traced_fleet):
        from repro.obs import parse_exposition
        from repro.server import EstimationClient

        fleet, _trace_log = traced_fleet
        with FleetClient(fleet.host, fleet.port) as client:
            for tenant in ("t1", "t2"):
                for text in QUERIES:
                    client.estimate(tenant, text, ALL_SPECS)
        with EstimationClient(fleet.host, fleet.port) as client:
            result = client.metrics()
        assert result["fleet"] is True
        assert result["format"] == "prometheus-text-0.0.4"
        assert len(result["workers"]) == 2
        merged = parse_exposition(result["exposition"])
        slots = [
            parse_exposition(slot["result"]["exposition"])
            for slot in result["workers"].values()
            if slot.get("ok")
        ]
        assert len(slots) == 2
        # Fleet-wide counters are exactly the sum of per-worker scrapes.
        for tenant in ("t1", "t2"):
            per_worker = sum(
                slot.value("repro_tenant_requests_total", tenant=tenant)
                for slot in slots
            )
            assert per_worker == len(QUERIES)
            assert (
                merged.value("repro_tenant_requests_total", tenant=tenant)
                == per_worker
            )
            assert (
                merged.value(
                    "repro_request_latency_ms_count", tenant=tenant
                )
                == per_worker
            )
        assert merged.value(
            "repro_requests_total", verb="estimate"
        ) == sum(
            slot.value("repro_requests_total", verb="estimate")
            for slot in slots
        )
        # Gauges have no meaningful fleet-wide sum and stay per-worker.
        assert merged.family("repro_admission_queue_depth") == {}
        assert all(
            ("repro_admission_queue_depth", ()) in slot.samples
            for slot in slots
        )

    def test_one_trace_id_spans_routing_and_fanned_workers(
        self, traced_fleet
    ):
        from repro.server import EstimationClient, protocol

        fleet, trace_log = traced_fleet
        trace_id = "fleet-fanout-trace-1"
        with EstimationClient(fleet.host, fleet.port) as client:
            response = client.request(
                {
                    "v": protocol.PROTOCOL_VERSION,
                    "verb": "stats",
                    "trace_id": trace_id,
                }
            )
        assert response["ok"]
        assert response["result"]["trace_id"] == trace_id
        deadline = time.monotonic() + 15.0
        pids: set[int] = set()
        while time.monotonic() < deadline and len(pids) < 2:
            if trace_log.exists():
                pids = {
                    record["pid"]
                    for record in (
                        json.loads(line)
                        for line in trace_log.read_text().splitlines()
                    )
                    if record["trace_id"] == trace_id
                }
            time.sleep(0.05)
        # The routing worker and the fanned-out peer each logged the
        # same trace id from their own process.
        assert len(pids) == 2, (
            f"expected trace {trace_id!r} from 2 worker pids, got {pids}"
        )

    def test_estimate_traces_carry_worker_identity(self, traced_fleet):
        fleet, trace_log = traced_fleet
        with FleetClient(fleet.host, fleet.port) as client:
            result = client.estimate("t1", QUERIES[0], ALL_SPECS)
        assert result["trace_id"]
        deadline = time.monotonic() + 15.0
        record = None
        while time.monotonic() < deadline and record is None:
            if trace_log.exists():
                for line in trace_log.read_text().splitlines():
                    candidate = json.loads(line)
                    if candidate["trace_id"] == result["trace_id"]:
                        record = candidate
                        break
            time.sleep(0.05)
        assert record is not None, "estimate trace never reached the log"
        assert record["worker"] in (0, 1)
        assert record["tenant"] == "t1"
        names = {span["name"] for span in record["spans"]}
        assert {"store_lookup", "cache_probe", "queue", "exec"} <= names
