"""Server-level observability tests: traces, metrics verb, slow log.

The PR 9 acceptance surface on a single-process server:

* a cold estimate's response carries a ``trace_id`` and per-stage
  ``timings`` whose top-level stages sum to within 10% of the
  envelope's wall-clock ``seconds``;
* a warm (cache-hit) estimate shows no executor span;
* the ``metrics`` verb emits parseable Prometheus text exposition with
  monotonic counters, and served floats are bit-identical with
  telemetry on;
* slow queries land in the NDJSON trace log as ``slow_query`` records;
* ``telemetry=False`` strips the tracing surface but keeps the
  stats/metrics verbs alive (the overhead benchmark's baseline).
"""

import json

import pytest

from repro.datasets.presets import running_example_graph
from repro.obs import parse_exposition
from repro.query.parser import parse_pattern
from repro.server import (
    EstimationClient,
    ServerConfig,
    StoreRegistry,
    ThreadedServer,
)
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics

QUERY = "a -[A]-> b -[B]-> c"
SPECS = ["max-hop-max", "MOLP"]

#: Stages that tile the request window (children like count/coalesce
#: nest inside exec and must not be double-counted against wall time).
TOP_LEVEL_STAGES = {"store_lookup", "cache_probe", "queue", "exec"}


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("obs-server")
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(base / "art")
    return base / "art"


def make_server(artifact_dir, **config_kwargs):
    registry = StoreRegistry()
    registry.load("example", artifact_dir)
    return ThreadedServer(
        registry, ServerConfig(port=0, **config_kwargs)
    )


@pytest.fixture()
def traced_server(artifact_dir, tmp_path):
    with make_server(
        artifact_dir, trace_log=str(tmp_path / "trace.ndjson")
    ) as server:
        yield server, tmp_path / "trace.ndjson"


def read_records(path, server=None):
    # Trace records are written by a background thread; flush it before
    # reading when the server is still live.
    if server is not None:
        server.server.telemetry.flush()
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRequestTracing:
    def test_cold_estimate_spans_tile_the_wall_clock(self, traced_server):
        server, trace_log = traced_server
        with EstimationClient(server.host, server.port) as client:
            result = client.estimate("example", QUERY, SPECS)
        assert result["trace_id"]
        timings = result["timings"]
        # A cold single-flight estimate runs the full pipeline.
        for stage in ("store_lookup_ms", "cache_probe_ms", "queue_ms",
                      "exec_ms", "count_ms"):
            assert stage in timings, f"missing {stage} in {timings}"
        top_level_ms = sum(
            ms for name, ms in timings.items()
            if name[: -len("_ms")] in TOP_LEVEL_STAGES
        )
        wall_ms = result["seconds"] * 1000.0
        assert top_level_ms <= wall_ms * 1.10
        assert top_level_ms >= wall_ms * 0.90, (
            f"stages {timings} cover only {top_level_ms:.4f} of "
            f"{wall_ms:.4f} ms"
        )
        records = read_records(trace_log, server)
        cold = [
            record for record in records
            if record["trace_id"] == result["trace_id"]
        ]
        assert len(cold) == 1
        spans = cold[0]["spans"]
        assert len(spans) >= 5
        by_name = {span["name"]: span for span in spans}
        exec_id = by_name["exec"]["span"]
        count_spans = [s for s in spans if s["name"] == "count"]
        assert len(count_spans) == len(SPECS)
        assert all(span["parent"] == exec_id for span in count_spans)
        assert cold[0]["shape"]  # canonical shape noted for the slow log
        assert cold[0]["generation"] == 1

    def test_warm_estimate_has_no_exec_span(self, traced_server):
        server, trace_log = traced_server
        with EstimationClient(server.host, server.port) as client:
            client.estimate("example", QUERY, SPECS)  # warm the LRU
            warm = client.estimate("example", QUERY, SPECS)
        assert "exec_ms" not in warm["timings"]
        assert "count_ms" not in warm["timings"]
        assert set(
            name[: -len("_ms")] for name in warm["timings"]
        ) == {"store_lookup", "cache_probe"}
        warm_record = [
            record for record in read_records(trace_log, server)
            if record["trace_id"] == warm["trace_id"]
        ][0]
        assert {span["name"] for span in warm_record["spans"]} == {
            "store_lookup", "cache_probe",
        }

    def test_client_supplied_trace_id_is_adopted(self, traced_server):
        server, trace_log = traced_server
        with EstimationClient(server.host, server.port) as client:
            result = client.estimate(
                "example", QUERY, SPECS, trace_id="my-trace-0001"
            )
        assert result["trace_id"] == "my-trace-0001"
        assert any(
            record["trace_id"] == "my-trace-0001"
            for record in read_records(trace_log, server)
        )

    def test_invalid_trace_id_is_a_typed_error(self, traced_server):
        server, _ = traced_server
        from repro.server import ServerError, protocol

        with EstimationClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call(
                    {
                        "v": protocol.PROTOCOL_VERSION,
                        "verb": "estimate",
                        "tenant": "example",
                        "query": QUERY,
                        "trace_id": "x" * 65,
                    }
                )
        assert excinfo.value.code == "invalid_request"

    def test_slow_queries_land_in_the_log(self, artifact_dir, tmp_path):
        trace_log = tmp_path / "slow.ndjson"
        with make_server(
            artifact_dir,
            trace_log=str(trace_log),
            slow_query_ms=0.0001,  # everything is "slow"
        ) as server:
            with EstimationClient(server.host, server.port) as client:
                result = client.estimate("example", QUERY, SPECS)
        slow = [
            record for record in read_records(trace_log)
            if record["type"] == "slow_query"
        ]
        assert slow, "no slow_query record despite a sub-ms threshold"
        record = slow[0]
        assert record["trace_id"] == result["trace_id"]
        assert record["tenant"] == "example"
        assert record["threshold_ms"] == 0.0001
        assert record["shape"]
        assert record["estimators"] == SPECS
        assert record["spans"], "slow record must carry the span breakdown"


class TestFollowerSpanSharing:
    def test_followers_reference_the_leaders_count_span(
        self, traced_server, monkeypatch
    ):
        import threading
        import time as time_module

        from repro.service.session import EstimationSession

        server, trace_log = traced_server
        original = EstimationSession.estimate

        def slowed(self, pattern, spec="max-hop-max"):
            time_module.sleep(0.25)
            return original(self, pattern, spec)

        monkeypatch.setattr(EstimationSession, "estimate", slowed)
        fan_out = 6
        query = "f0 -[C]-> f1 -[D]-> f2"  # cold: unique to this test
        barrier = threading.Barrier(fan_out)
        results: list[dict] = [None] * fan_out
        failures: list[Exception] = []

        def fire(slot):
            try:
                with EstimationClient(server.host, server.port) as client:
                    barrier.wait(10)
                    results[slot] = client.estimate(
                        "example", query, ["max-hop-max"]
                    )
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [
            threading.Thread(target=fire, args=(slot,))
            for slot in range(fan_out)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not failures
        trace_ids = {result["trace_id"] for result in results}
        records = [
            record for record in read_records(trace_log, server)
            if record["trace_id"] in trace_ids
        ]
        assert len(records) == fan_out
        count_refs = {
            f"{record['trace_id']}:{span['span']}"
            for record in records
            for span in record["spans"]
            if span["name"] == "count"
        }
        coalesce_spans = [
            span
            for record in records
            for span in record["spans"]
            if span["name"] == "coalesce"
        ]
        assert coalesce_spans, "no follower recorded a coalesce span"
        for span in coalesce_spans:
            # A follower does not fabricate a count span; it points at
            # the leader's via the published cross-trace reference.
            assert span["shared"] in count_refs, (
                f"coalesce span references {span['shared']!r}, not a "
                f"leader count span ({sorted(count_refs)})"
            )
        # Followers never fabricated their own count span (a straggler
        # arriving after the build may legitimately be a plain warm hit
        # with neither span, so leaders+followers need not cover all).
        leaders = {
            record["trace_id"]
            for record in records
            if any(span["name"] == "count" for span in record["spans"])
        }
        followers = {
            record["trace_id"]
            for record in records
            if any(span["name"] == "coalesce" for span in record["spans"])
        }
        assert leaders and followers
        assert leaders.isdisjoint(followers)


class TestMetricsVerb:
    def test_exposition_parses_and_counts_requests(self, artifact_dir):
        with make_server(artifact_dir) as server:
            with EstimationClient(server.host, server.port) as client:
                client.estimate("example", QUERY, SPECS)
                first = client.metrics()
                assert first["format"] == "prometheus-text-0.0.4"
                exposition = parse_exposition(first["exposition"])
                assert exposition.types["repro_requests_total"] == "counter"
                assert (
                    exposition.value("repro_requests_total", verb="estimate")
                    == 1
                )
                assert (
                    exposition.types["repro_request_latency_ms"] == "histogram"
                )
                assert (
                    exposition.value(
                        "repro_request_latency_ms_count", tenant="example"
                    )
                    == 1
                )
                assert exposition.value(
                    "repro_server_info", version="1.0.0"
                ) == 1
                # Counter monotonicity across scrapes.
                client.estimate("example", QUERY, SPECS)
                second = parse_exposition(client.metrics()["exposition"])
                for (name, labels), value in exposition.samples.items():
                    family = name
                    for suffix in ("_bucket", "_sum", "_count"):
                        if name.endswith(suffix):
                            family = name[: -len(suffix)]
                    if exposition.types.get(family) != "counter":
                        continue
                    assert second.samples.get((name, labels), 0.0) >= value, (
                        f"counter {name}{dict(labels)} went backwards"
                    )
                assert (
                    second.value("repro_requests_total", verb="estimate") == 2
                )

    def test_stage_and_admission_metrics_exist(self, artifact_dir):
        with make_server(artifact_dir) as server:
            with EstimationClient(server.host, server.port) as client:
                client.estimate("example", QUERY, SPECS)
                exposition = parse_exposition(
                    client.metrics()["exposition"]
                )
        assert exposition.value("repro_stage_ms_count", stage="exec") == 1
        assert exposition.value("repro_stage_ms_count", stage="queue") == 1
        assert (
            exposition.value("repro_coalescer_leaders_total") == len(SPECS)
        )
        assert ("repro_admission_queue_depth", ()) in exposition.samples
        assert exposition.value("repro_process_start_time_seconds") > 0
        assert (
            exposition.value("repro_generation_age_seconds", tenant="example")
            >= 0
        )

    def test_floats_bit_identical_with_telemetry_on(self, artifact_dir):
        reference = StatisticsStore.load(artifact_dir).session()
        batch = reference.estimate_batch(
            [parse_pattern(QUERY)], specs=SPECS
        )
        with make_server(artifact_dir) as server:
            with EstimationClient(server.host, server.port) as client:
                served = client.estimate("example", QUERY, SPECS)
        for spec in SPECS:
            assert served["estimates"][spec] == batch.item(0, spec).estimate


class TestStatsAdditions:
    def test_server_block_and_quantiles(self, artifact_dir):
        with make_server(artifact_dir) as server:
            with EstimationClient(server.host, server.port) as client:
                for _ in range(5):
                    client.estimate("example", QUERY, SPECS)
                stats = client.stats()
        assert stats["server"]["version"] == "1.0.0"
        assert stats["server"]["start_time_unix"] > 0
        assert stats["server"]["start_time"].endswith("+00:00")
        assert stats["telemetry"]["enabled"] is True
        tenant = stats["tenants"]["example"]
        assert tenant["generation_age_seconds"] >= 0
        requests = tenant["requests"]
        assert requests["requests"] == 5
        assert requests["ok"] == 5
        latency = requests["latency_ms"]
        assert sum(latency["buckets"].values()) == 5
        assert "<=0.1ms" in latency["buckets"]  # new sub-ms resolution
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        # Bucket interpolation can overshoot the true max only as far
        # as the upper edge of the bucket holding it.
        from repro.obs import LATENCY_BUCKETS_MS

        ceiling = next(
            (b for b in LATENCY_BUCKETS_MS if b >= latency["max_ms"]),
            LATENCY_BUCKETS_MS[-1],
        )
        assert latency["p99"] <= ceiling

    def test_by_verb_counts_from_the_registry(self, artifact_dir):
        with make_server(artifact_dir) as server:
            with EstimationClient(server.host, server.port) as client:
                client.ping()
                client.estimate("example", QUERY, SPECS)
                stats = client.stats()
        by_verb = stats["requests"]["by_verb"]
        assert by_verb["ping"] == 1
        assert by_verb["estimate"] == 1
        assert by_verb["stats"] == 1
        assert stats["requests"]["total"] == sum(by_verb.values())


class TestTelemetryDisabled:
    def test_no_trace_surface_but_verbs_still_work(self, artifact_dir):
        with make_server(artifact_dir, telemetry=False) as server:
            with EstimationClient(server.host, server.port) as client:
                result = client.estimate("example", QUERY, SPECS)
                assert "trace_id" not in result
                assert "timings" not in result
                stats = client.stats()
                assert stats["telemetry"]["enabled"] is False
                assert (
                    stats["tenants"]["example"]["requests"]["requests"] == 1
                )
                exposition = parse_exposition(
                    client.metrics()["exposition"]
                )
                assert (
                    exposition.value("repro_requests_total", verb="estimate")
                    == 1
                )

    def test_disabled_floats_match_enabled_floats(self, artifact_dir):
        with make_server(artifact_dir, telemetry=False) as server:
            with EstimationClient(server.host, server.port) as client:
                baseline = client.estimate("example", QUERY, SPECS)
        with make_server(artifact_dir, telemetry=True) as server:
            with EstimationClient(server.host, server.port) as client:
                traced = client.estimate("example", QUERY, SPECS)
        assert baseline["estimates"] == traced["estimates"]


class TestAuditIntegration:
    def test_served_estimates_feed_the_q_error_histogram(self, artifact_dir):
        with make_server(
            artifact_dir, audit_rate=1.0, audit_walk_ratio=1.0
        ) as server:
            with EstimationClient(server.host, server.port) as client:
                client.estimate("example", QUERY, SPECS)
            audit = server.server.telemetry.audit
            assert audit is not None
            audit.drain(timeout=30.0)
            exposition = parse_exposition(
                server.server.metrics_result()["exposition"]
            )
        for spec in SPECS:
            assert (
                exposition.value("repro_audit_samples_total", estimator=spec)
                == 1
            )
            assert (
                exposition.value(
                    "repro_audit_q_error_count",
                    estimator=spec,
                    shape_class="acyclic-2e",
                )
                == 1
            )
