"""Correctness of the exact counting engine.

The acyclic DP and the core-based backtracking counter are validated
against the brute-force oracle on small random graphs (hypothesis), and
against hand-computed counts on the tiny fixture graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    count_acyclic,
    count_bruteforce,
    count_general,
    count_pattern,
    two_core_edges,
)
from repro.errors import CountBudgetExceeded
from repro.graph import LabeledDiGraph
from repro.query import QueryPattern, parse_pattern, templates


class TestTinyGraphCounts:
    """Hand-verified counts on the conftest tiny graph."""

    def test_single_edge(self, tiny_graph):
        assert count_pattern(tiny_graph, parse_pattern("x -[A]-> y")) == 3

    def test_two_path(self, tiny_graph):
        # A->B paths: 0-2-{4,5}, 1-2-{4,5}, 0-3-4  => 5
        assert count_pattern(tiny_graph, parse_pattern("x -[A]-> y -[B]-> z")) == 5

    def test_three_path(self, tiny_graph):
        # A->B->C: through 2-4 (C out deg 2): (0,1)->2->4->{6,7} = 4
        #          through 2-5: (0,1)->2->5->6 = 2
        #          through 3-4: 0->3->4->{6,7} = 2            => 8
        pattern = parse_pattern("w -[A]-> x -[B]-> y -[C]-> z")
        assert count_pattern(tiny_graph, pattern) == 8

    def test_star_count(self, tiny_graph):
        # y <-B- x -B-> z (2-star, homomorphisms incl. y=z):
        # src 2 has B-outdeg 2 -> 4; src 3 has 1 -> 1  => 5
        pattern = QueryPattern([("x", "y", "B"), ("x", "z", "B")])
        assert count_pattern(tiny_graph, pattern) == 5

    def test_cyclic_triangle_zero(self, tiny_graph):
        pattern = templates.triangle().with_labels(["A", "A", "A"])
        assert count_pattern(tiny_graph, pattern) == 0

    def test_four_cycle_via_c_edge(self, tiny_graph):
        # Every A->B->C chain must close with a C edge back to `a`; the
        # only C edge into an A-source is 6->0, giving three matches:
        # 0-2-4-6, 0-2-5-6 and 0-3-4-6.
        pattern = QueryPattern(
            [("a", "b", "A"), ("b", "c", "B"), ("c", "d", "C"), ("d", "a", "C")]
        )
        assert count_pattern(tiny_graph, pattern) == 3

    def test_missing_label_counts_zero(self, tiny_graph):
        assert count_pattern(tiny_graph, parse_pattern("x -[Z]-> y")) == 0

    def test_disconnected_product(self, tiny_graph):
        pattern = QueryPattern([("a", "b", "A"), ("c", "d", "B")])
        assert count_pattern(tiny_graph, pattern) == 3 * 3


class TestCoreDecomposition:
    def test_acyclic_core_empty(self):
        assert two_core_edges(templates.path(5)) == frozenset()

    def test_cycle_core_is_whole(self):
        assert two_core_edges(templates.cycle(4)) == frozenset(range(4))

    def test_lollipop_core(self):
        # Triangle with a tail: core is the triangle.
        pattern = QueryPattern(
            [("a", "b", "A"), ("b", "c", "B"), ("c", "a", "C"), ("a", "t", "D")]
        )
        assert two_core_edges(pattern) == frozenset({0, 1, 2})

    def test_self_loop_in_core(self):
        pattern = QueryPattern([("a", "a", "A"), ("a", "b", "B")])
        assert two_core_edges(pattern) == frozenset({0})


class TestBudget:
    def test_budget_enforced(self, medium_random_graph):
        labels = medium_random_graph.labels[:4]
        pattern = templates.cycle(4).with_labels(
            [labels[0], labels[1], labels[0], labels[1]]
        )
        with pytest.raises(CountBudgetExceeded):
            count_pattern(medium_random_graph, pattern, budget=1)


# ----------------------------------------------------------------------
# Property tests against brute force
# ----------------------------------------------------------------------

@st.composite
def graph_and_pattern(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    labels = ["A", "B"]
    num_edges = draw(st.integers(min_value=1, max_value=10))
    triples = set()
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        label = draw(st.sampled_from(labels))
        triples.add((u, v, label))
    graph = LabeledDiGraph.from_triples(sorted(triples), num_vertices=n)

    shape_name = draw(
        st.sampled_from(["path2", "path3", "star2", "triangle", "cycle4", "lollipop"])
    )
    if shape_name == "path2":
        base = templates.path(2)
    elif shape_name == "path3":
        base = templates.path(3)
    elif shape_name == "star2":
        base = templates.star(2)
    elif shape_name == "triangle":
        base = templates.triangle()
    elif shape_name == "cycle4":
        base = templates.cycle(4)
    else:
        base = QueryPattern(
            [("a", "b", "?0"), ("b", "c", "?1"), ("c", "a", "?2"), ("a", "t", "?3")]
        )
    chosen = [draw(st.sampled_from(labels)) for _ in range(len(base))]
    pattern = base.with_labels(chosen)
    return graph, pattern


class TestAgainstBruteForce:
    @given(graph_and_pattern())
    @settings(max_examples=80, deadline=None)
    def test_count_matches_bruteforce(self, case):
        graph, pattern = case
        expected = count_bruteforce(graph, pattern)
        assert count_pattern(graph, pattern) == pytest.approx(expected)

    @given(graph_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_acyclic_and_general_agree(self, case):
        graph, pattern = case
        if two_core_edges(pattern):
            return
        assert count_acyclic(graph, pattern) == pytest.approx(
            count_general(graph, pattern)
        )


class TestClosedForms:
    def test_two_path_closed_form(self, medium_random_graph):
        """|A join B| == sum_v in_A(v) * out_B(v)."""
        graph = medium_random_graph
        la, lb = graph.labels[0], graph.labels[1]
        expected = float(
            (graph.in_degrees(la) * graph.out_degrees(lb)).sum()
        )
        pattern = QueryPattern([("x", "y", la), ("y", "z", lb)])
        assert count_pattern(graph, pattern) == pytest.approx(expected)

    def test_star_closed_form(self, medium_random_graph):
        """2-star homomorphism count == sum_v out_A(v) * out_B(v)."""
        graph = medium_random_graph
        la, lb = graph.labels[0], graph.labels[2]
        expected = float(
            (graph.out_degrees(la) * graph.out_degrees(lb)).sum()
        )
        pattern = QueryPattern([("x", "y", la), ("x", "z", lb)])
        assert count_pattern(graph, pattern) == pytest.approx(expected)

    def test_triangle_via_trace(self, medium_random_graph):
        """Triangle homomorphisms == trace(A @ B @ C)."""
        graph = medium_random_graph
        la, lb, lc = graph.labels[0], graph.labels[1], graph.labels[2]
        product = (
            graph.adjacency_csr(la)
            @ graph.adjacency_csr(lb)
            @ graph.adjacency_csr(lc)
        )
        expected = float(np.asarray(product.diagonal()).sum())
        pattern = templates.triangle().with_labels([la, lb, lc])
        assert count_pattern(graph, pattern) == pytest.approx(expected)
