"""Unit tests for QueryPattern / QueryEdge."""

import pytest

from repro.errors import PatternError
from repro.query import QueryEdge, QueryPattern


def _chain3() -> QueryPattern:
    return QueryPattern([("a1", "a2", "A"), ("a2", "a3", "B"), ("a3", "a4", "C")])


class TestQueryEdge:
    def test_variables(self):
        edge = QueryEdge("x", "y", "A")
        assert edge.variables() == ("x", "y")

    def test_touches(self):
        edge = QueryEdge("x", "y", "A")
        assert edge.touches("x") and edge.touches("y")
        assert not edge.touches("z")

    def test_other_end(self):
        edge = QueryEdge("x", "y", "A")
        assert edge.other_end("x") == "y"
        assert edge.other_end("y") == "x"

    def test_other_end_rejects_foreign_var(self):
        with pytest.raises(PatternError):
            QueryEdge("x", "y", "A").other_end("z")

    def test_self_loop_other_end(self):
        assert QueryEdge("x", "x", "A").other_end("x") == "x"

    def test_str(self):
        assert str(QueryEdge("x", "y", "A")) == "x-[A]->y"


class TestQueryPatternBasics:
    def test_tuple_construction(self):
        pattern = QueryPattern([("a", "b", "A")])
        assert pattern.edges[0] == QueryEdge("a", "b", "A")

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            QueryPattern([])

    def test_duplicate_atom_rejected(self):
        with pytest.raises(PatternError):
            QueryPattern([("a", "b", "A"), ("a", "b", "A")])

    def test_parallel_different_labels_allowed(self):
        pattern = QueryPattern([("a", "b", "A"), ("a", "b", "B")])
        assert len(pattern) == 2

    def test_variables_in_first_appearance_order(self):
        assert _chain3().variables == ("a1", "a2", "a3", "a4")

    def test_labels(self):
        assert _chain3().labels == ("A", "B", "C")

    def test_equality_is_order_insensitive(self):
        p1 = QueryPattern([("a", "b", "A"), ("b", "c", "B")])
        p2 = QueryPattern([("b", "c", "B"), ("a", "b", "A")])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_inequality(self):
        p1 = QueryPattern([("a", "b", "A")])
        p2 = QueryPattern([("a", "b", "B")])
        assert p1 != p2

    def test_getitem_and_iter(self):
        pattern = _chain3()
        assert pattern[1].label == "B"
        assert [e.label for e in pattern] == ["A", "B", "C"]


class TestStructure:
    def test_edges_at(self):
        pattern = _chain3()
        assert set(pattern.edges_at("a2")) == {0, 1}
        assert pattern.edges_at("missing") == ()

    def test_degree(self):
        pattern = _chain3()
        assert pattern.degree("a1") == 1
        assert pattern.degree("a2") == 2

    def test_self_loop_degree_counted_once(self):
        pattern = QueryPattern([("a", "a", "A")])
        assert pattern.degree("a") == 1

    def test_variables_of(self):
        pattern = _chain3()
        assert pattern.variables_of([0, 1]) == frozenset({"a1", "a2", "a3"})

    def test_subpattern(self):
        sub = _chain3().subpattern([1, 2])
        assert sub.labels == ("B", "C")

    def test_subpattern_empty_rejected(self):
        with pytest.raises(PatternError):
            _chain3().subpattern([])

    def test_is_connected_subset(self):
        pattern = _chain3()
        assert pattern.is_connected_subset([0, 1])
        assert not pattern.is_connected_subset([0, 2])
        assert pattern.is_connected_subset([])

    def test_is_connected(self):
        assert _chain3().is_connected()
        disconnected = QueryPattern([("a", "b", "A"), ("c", "d", "B")])
        assert not disconnected.is_connected()

    def test_neighbors_of_subset(self):
        pattern = _chain3()
        assert pattern.neighbors_of_subset([0]) == frozenset({1})
        assert pattern.neighbors_of_subset([1]) == frozenset({0, 2})

    def test_connected_edge_subsets_count(self):
        # 3-chain: {0},{1},{2},{01},{12},{012} — {02} is disconnected.
        subsets = _chain3().connected_edge_subsets()
        assert len(subsets) == 6
        assert frozenset({0, 2}) not in subsets

    def test_connected_edge_subsets_max_size(self):
        subsets = _chain3().connected_edge_subsets(max_size=2)
        assert all(len(s) <= 2 for s in subsets)
        assert len(subsets) == 5

    def test_rename(self):
        renamed = _chain3().rename({"a1": "x"})
        assert "x" in renamed.variables
        assert "a1" not in renamed.variables

    def test_with_labels(self):
        relabeled = _chain3().with_labels(["X", "Y", "Z"])
        assert relabeled.labels == ("X", "Y", "Z")

    def test_with_labels_length_mismatch(self):
        with pytest.raises(PatternError):
            _chain3().with_labels(["X"])
