"""Failure-injection tests: degenerate inputs must degrade gracefully.

Estimators run inside query optimizers; they must never crash on empty
relations, absent labels, self-loops, single-vertex graphs, or exhausted
budgets — they return 0/raise the library's typed errors instead.
"""

import pytest

from repro.baselines import (
    CharacteristicSetsEstimator,
    Rdf3xDefaultEstimator,
    SumRdfEstimator,
    WanderJoinEstimator,
)
from repro.catalog import DegreeCatalog, MarkovTable
from repro.core import (
    MolpEstimator,
    OptimisticEstimator,
    agm_bound,
    cbs_bound,
    molp_bound,
    optimistic_sketch_estimate,
)
from repro.engine import count_pattern
from repro.errors import (
    CountBudgetExceeded,
    EstimationError,
    MissingStatisticError,
    ReproError,
)
from repro.graph import LabeledDiGraph
from repro.query import QueryPattern, parse_pattern


@pytest.fixture(scope="module")
def lonely_graph() -> LabeledDiGraph:
    """One vertex, one self-loop."""
    return LabeledDiGraph.from_triples([(0, 0, "A")], num_vertices=1)


@pytest.fixture(scope="module")
def sparse_graph() -> LabeledDiGraph:
    """Two disconnected edges with different labels."""
    return LabeledDiGraph.from_triples(
        [(0, 1, "A"), (2, 3, "B")], num_vertices=4
    )


class TestAbsentLabels:
    def test_optimistic_estimates_zero(self, sparse_graph):
        markov = MarkovTable(sparse_graph, h=2)
        estimator = OptimisticEstimator(markov)
        query = parse_pattern("x -[A]-> y -[Z]-> z")
        assert estimator.estimate(query) == 0.0

    def test_molp_bound_zero(self, sparse_graph):
        catalog = DegreeCatalog(sparse_graph, h=1)
        query = parse_pattern("x -[A]-> y -[Z]-> z")
        assert molp_bound(query, catalog) == 0.0

    def test_agm_zero(self, sparse_graph):
        query = parse_pattern("x -[A]-> y -[Z]-> z")
        assert agm_bound(query, sparse_graph) == 0.0

    def test_cbs_zero(self, sparse_graph):
        catalog = DegreeCatalog(sparse_graph, h=1)
        query = parse_pattern("x -[A]-> y -[Z]-> z")
        assert cbs_bound(query, catalog) == 0.0

    def test_baselines_handle_missing(self, sparse_graph):
        query = parse_pattern("x -[Z]-> y")
        assert CharacteristicSetsEstimator(sparse_graph).estimate(query) == 0.0
        assert SumRdfEstimator(sparse_graph).estimate(query) == 0.0
        assert WanderJoinEstimator(sparse_graph).estimate(query, 0.5) == 0.0
        assert Rdf3xDefaultEstimator(sparse_graph).estimate(query) == 0.0


class TestSelfLoops:
    def test_count_self_loop(self, lonely_graph):
        query = QueryPattern([("x", "x", "A")])
        assert count_pattern(lonely_graph, query) == 1

    def test_markov_self_loop(self, lonely_graph):
        markov = MarkovTable(lonely_graph, h=2)
        assert markov.cardinality(QueryPattern([("x", "x", "A")])) == 1

    def test_molp_on_self_loop(self, lonely_graph):
        catalog = DegreeCatalog(lonely_graph, h=1)
        query = QueryPattern([("x", "x", "A")])
        assert molp_bound(query, catalog) >= 1.0

    def test_self_loop_chain(self, lonely_graph):
        query = QueryPattern([("x", "x", "A"), ("x", "y", "A")])
        assert count_pattern(lonely_graph, query) == 1


class TestBudgets:
    def test_markov_count_budget(self, medium_random_graph):
        from repro.query import templates

        labels = list(medium_random_graph.labels)
        markov = MarkovTable(medium_random_graph, h=3, count_budget=1)
        triangle = templates.triangle().with_labels(labels[:3])
        with pytest.raises(CountBudgetExceeded):
            markov.cardinality(triangle)

    def test_stat_relation_max_rows(self, medium_random_graph):
        from repro.errors import PlanningError

        labels = list(medium_random_graph.labels)
        pattern = QueryPattern(
            [("x", "y", labels[0]), ("y", "z", labels[1])]
        )
        from repro.catalog import StatRelation

        with pytest.raises(PlanningError):
            StatRelation(medium_random_graph, pattern, max_rows=1)


class TestMissingStatistics:
    def test_markov_oversize(self, sparse_graph):
        markov = MarkovTable(sparse_graph, h=1)
        with pytest.raises(MissingStatisticError):
            markov.cardinality(parse_pattern("x -[A]-> y -[B]-> z"))

    def test_catalog_oversize(self, sparse_graph):
        catalog = DegreeCatalog(sparse_graph, h=1)
        with pytest.raises(MissingStatisticError):
            catalog.relation_for(parse_pattern("x -[A]-> y -[B]-> z"))

    def test_typed_error_hierarchy(self):
        assert issubclass(MissingStatisticError, ReproError)
        assert issubclass(EstimationError, ReproError)
        assert issubclass(CountBudgetExceeded, ReproError)


class TestSketchDegeneracies:
    def test_sketch_on_starless_query(self, sparse_graph):
        """A single-atom query has no join attributes: sketch is a no-op."""
        value = optimistic_sketch_estimate(
            sparse_graph, parse_pattern("x -[A]-> y"), budget=16, h=1
        )
        assert value == 1.0

    def test_molp_estimator_empty_relation(self, sparse_graph):
        estimator = MolpEstimator(sparse_graph, h=1, budget=4)
        query = parse_pattern("x -[A]-> y -[Z]-> z")
        assert estimator.estimate(query) == 0.0


class TestWorkloadsOnHostileGraphs:
    def test_self_loop_satisfies_clique_homomorphically(self, lonely_graph):
        """All clique variables can map to the loop vertex: the sampler
        legitimately finds an instance and it is non-empty."""
        from repro.engine import PatternSampler
        from repro.query import templates

        sampler = PatternSampler(lonely_graph, seed=0)
        instance = sampler.sample_instance(templates.clique(4), max_tries=20)
        assert instance is not None
        assert count_pattern(lonely_graph, instance) >= 1

    def test_sampler_gives_up_gracefully(self, sparse_graph):
        """An acyclic loop-free graph has no triangle homomorphism."""
        from repro.engine import PatternSampler
        from repro.query import templates

        sampler = PatternSampler(sparse_graph, seed=0)
        instance = sampler.sample_instance(templates.triangle(), max_tries=10)
        assert instance is None

    def test_workload_generation_on_tiny_graph(self, lonely_graph):
        from repro.datasets import job_like_workload

        workload = job_like_workload(lonely_graph, per_template=1, seed=0)
        # A one-vertex self-loop graph matches star/path templates via
        # the loop; whatever comes back must be non-empty and counted.
        for query in workload:
            assert query.true_cardinality >= 1
