"""Streaming/gzip/mmap graph IO (`repro.graph.io`)."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.datasets.presets import load_dataset, running_example_graph
from repro.errors import DatasetError
from repro.graph.io import (
    load_edge_list,
    load_npz,
    load_ntriples,
    save_edge_list,
    save_npz,
)
from repro.stats.artifact import dataset_fingerprint


@pytest.fixture(scope="module")
def graph():
    return load_dataset("epinions", 0.02)


class TestEdgeList:
    def test_roundtrip_preserves_fingerprint(self, graph, tmp_path):
        path = tmp_path / "g.tsv"
        save_edge_list(graph, path)
        assert dataset_fingerprint(load_edge_list(path)) == (
            dataset_fingerprint(graph)
        )

    def test_batched_save_matches_triples_format(self, tmp_path):
        # The batched per-label writer must emit the exact bytes the old
        # one-write-per-edge loop did: header, then label-sorted triples.
        g = running_example_graph()
        path = tmp_path / "g.tsv"
        save_edge_list(g, path)
        expected = f"# vertices={g.num_vertices}\n" + "".join(
            f"{u}\t{v}\t{label}\n" for u, v, label in g.triples()
        )
        assert path.read_text() == expected

    def test_gzip_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.tsv.gz"
        save_edge_list(graph, path)
        with path.open("rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # really gzipped
        assert dataset_fingerprint(load_edge_list(path)) == (
            dataset_fingerprint(graph)
        )

    def test_non_integer_column_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# vertices=5\n0\t1\tA\n1\tx\tB\n")
        with pytest.raises(DatasetError, match=r"bad\.tsv:3: .*integers"):
            load_edge_list(path)

    def test_wrong_column_count_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(DatasetError, match=r"bad\.tsv:1: expected 3"):
            load_edge_list(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("# vertices=3\n")
        with pytest.raises(DatasetError, match="no edges"):
            load_edge_list(path)

    def test_missing_file_wrapped(self, tmp_path):
        with pytest.raises(DatasetError):
            load_edge_list(tmp_path / "absent.tsv")

    def test_vertex_count_inferred_without_header(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("0\t4\tA\n2\t1\tA\n")
        loaded = load_edge_list(path)
        assert loaded.num_vertices == 5
        assert loaded.num_edges == 2


class TestNTriples:
    def test_parses_iris_blank_nodes_and_literals(self, tmp_path):
        path = tmp_path / "t.nt"
        path.write_text(
            "# a comment\n"
            "<http://ex/a> <http://ex/p> <http://ex/b> .\n"
            "_:node <http://ex/p> \"a literal\" .\n"
            "<http://ex/b> <http://ex/q> _:node .\n"
        )
        graph, terms = load_ntriples(path, return_terms=True)
        assert graph.num_edges == 3
        assert graph.labels == ("http://ex/p", "http://ex/q")
        assert terms[0] == "<http://ex/a>"
        assert len(terms) == graph.num_vertices

    def test_gzip_transparency(self, tmp_path):
        path = tmp_path / "t.nt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("<http://a> <http://p> <http://b> .\n")
        assert load_ntriples(path).num_edges == 1

    def test_malformed_line_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text(
            "<http://a> <http://p> <http://b> .\n<http://a> <http://p>\n"
        )
        with pytest.raises(DatasetError, match=r"bad\.nt:2"):
            load_ntriples(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.nt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError, match="no triples"):
            load_ntriples(path)


class TestNpz:
    def test_compressed_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert dataset_fingerprint(load_npz(path)) == (
            dataset_fingerprint(graph)
        )

    def test_uncompressed_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path, compressed=False)
        assert dataset_fingerprint(load_npz(path)) == (
            dataset_fingerprint(graph)
        )

    def test_mmap_load_is_zero_copy_and_equal(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path, compressed=False)
        mapped = load_npz(path, mmap=True)
        assert dataset_fingerprint(mapped) == dataset_fingerprint(graph)
        relation = mapped.relation(mapped.labels[0])
        for view in (
            relation.src_by_src,
            relation.dst_by_src,
            relation.src_by_dst,
            relation.dst_by_dst,
        ):
            assert isinstance(view, np.memmap)
            assert not view.flags.writeable
        # Adjacency still works off the mapped views.
        original = graph.relation(mapped.labels[0])
        vertex = int(original.src_by_src[0])
        assert list(relation.out_neighbors(vertex)) == list(
            original.out_neighbors(vertex)
        )

    def test_mmap_on_compressed_archive_refused(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)  # compressed: members are deflated
        with pytest.raises(DatasetError, match="compressed=False"):
            load_npz(path, mmap=True)

    def test_not_an_archive_wrapped(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(DatasetError):
            load_npz(path)
        with pytest.raises(DatasetError):
            load_npz(path, mmap=True)

    def test_mmap_roundtrip_through_statistics(self, graph, tmp_path):
        # The build-plane path: statistics built from a memory-mapped
        # graph must match statistics built from the in-memory graph.
        from repro.stats.build import StatsBuildConfig, build_statistics

        path = tmp_path / "g.npz"
        save_npz(graph, path, compressed=False)
        mapped = load_npz(path, mmap=True)
        config = StatsBuildConfig(h=1, molp_h=1, baselines=False)
        a = build_statistics(graph, config)
        b = build_statistics(mapped, config)
        assert a.markov.to_artifact() == b.markov.to_artifact()
        assert a.degrees.to_artifact() == b.degrees.to_artifact()
