"""Flat artifact layout: determinism, zero-copy load, repack migration.

The on-disk half of the zero-copy tentpole: ``save(layout="flat")``
writes one page-aligned, deterministically-encoded NPZ of catalog
arrays that ``load(mmap=True)`` opens without copying, the legacy
per-catalog JSON layout stays loadable, and ``repro stats repack``
migrates old artifacts in place.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.presets import running_example_graph
from repro.errors import DatasetError
from repro.query.parser import parse_pattern
from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics
from repro.stats.flatpack import store_from_image, store_to_image

QUERIES = [
    "a -[A]-> b -[B]-> c",
    "x -[B]-> y -[C]-> z",
    "u -[B]-> v, u -[B]-> w",
    "s -[A]-> t",
]
SPECS = ["max-hop-max", "min-hop-min", "all-hops-avg", "MOLP"]


@pytest.fixture(scope="module")
def built_store():
    return build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )


def estimates_of(store):
    batch = store.session().estimate_batch(
        [parse_pattern(text) for text in QUERIES], specs=SPECS
    )
    return [(item.estimate, item.error) for item in batch.items]


class TestFlatLayout:
    def test_flat_is_the_default_and_round_trips(
        self, built_store, tmp_path
    ):
        built_store.save(tmp_path / "art")
        manifest = json.loads((tmp_path / "art" / "manifest.json").read_text())
        assert manifest["layout"] == "flat"
        assert (tmp_path / "art" / "catalogs.npz").exists()
        assert not (tmp_path / "art" / "markov.json").exists()
        loaded = StatisticsStore.load(tmp_path / "art")
        assert estimates_of(loaded) == estimates_of(built_store)

    def test_flat_encoding_is_deterministic(self, built_store, tmp_path):
        built_store.save(tmp_path / "a")
        # A load → save round trip reproduces the NPZ byte-for-byte —
        # the property peers rely on to share one digest-keyed image.
        StatisticsStore.load(tmp_path / "a").save(tmp_path / "b")
        for name in ("catalogs.npz", "catalogs.meta.json"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes(), f"{name} must be byte-identical across saves"

    def test_mmap_load_bit_identical(self, built_store, tmp_path):
        built_store.save(tmp_path / "art")
        mapped = StatisticsStore.load(tmp_path / "art", mmap=True)
        assert estimates_of(mapped) == estimates_of(built_store)

    def test_legacy_json_layout_still_loads(self, built_store, tmp_path):
        built_store.save(tmp_path / "art", layout="json")
        assert (tmp_path / "art" / "markov.json").exists()
        loaded = StatisticsStore.load(tmp_path / "art")
        assert estimates_of(loaded) == estimates_of(built_store)

    def test_mmap_on_legacy_layout_points_at_repack(
        self, built_store, tmp_path
    ):
        built_store.save(tmp_path / "art", layout="json")
        with pytest.raises(DatasetError, match="repack"):
            StatisticsStore.load(tmp_path / "art", mmap=True)

    def test_image_round_trip_bit_identical(self, built_store, tmp_path):
        built_store.save(tmp_path / "art")
        mapped = StatisticsStore.load(tmp_path / "art", mmap=True)
        meta, arrays = store_to_image(mapped)
        rebuilt = store_from_image(meta, arrays)
        assert estimates_of(rebuilt) == estimates_of(built_store)
        assert (
            rebuilt.manifest.dataset_fingerprint
            == built_store.manifest.dataset_fingerprint
        )


class TestWideVocab:
    """Vocabularies past 255 labels pack atoms whose trailing byte is
    0x00 (``label_id + 1`` divisible by 256); numpy strips those nulls
    from stored ``S`` items, so lookup must compare stripped forms."""

    VOCAB = tuple(f"L{i:03d}" for i in range(300))

    def test_key_index_finds_every_key(self):
        from repro.stats.flatpack import (
            _KeyIndex,
            _pack_sorted,
            encode_canonical_key,
        )

        label_ids = {label: i for i, label in enumerate(self.VOCAB)}
        keys = [((0, 1, label),) for label in self.VOCAB]
        packed, order = _pack_sorted(
            [encode_canonical_key(key, label_ids) for key in keys]
        )
        index = _KeyIndex(packed, list(self.VOCAB))
        for key in keys:  # notably L255: label_id + 1 == 256
            assert index.find(key) is not None, f"lost {key}"
        assert index.find(((0, 1, "unknown"),)) is None

    def test_complete_markov_round_trips_wide_vocab(self):
        from repro.catalog.markov import MarkovTable
        from repro.query.canonical import canonical_key
        from repro.stats.flatpack import markov_from_flat, markov_to_flat

        patterns = {
            label: parse_pattern(f"a -[{label}]-> b") for label in self.VOCAB
        }
        table = MarkovTable(None, h=1, labels=self.VOCAB, complete=True)
        table._cache = {
            canonical_key(patterns[label]): float(i + 1)
            for i, label in enumerate(self.VOCAB)
        }
        meta, arrays = markov_to_flat(table)
        loaded = markov_from_flat(meta, arrays)
        # A complete graph-free table answers misses with 0.0 — so a
        # lookup regression here serves silently-wrong estimates.
        for i, label in enumerate(self.VOCAB):
            assert loaded.cardinality(patterns[label]) == float(i + 1)


class TestRepackCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_repack_migrates_legacy_artifact(
        self, capsys, built_store, tmp_path
    ):
        art = tmp_path / "art"
        built_store.save(art, layout="json")
        code, out, _ = self.run_cli(capsys, "stats", "repack", str(art))
        assert code == 0
        summary = json.loads(out)
        assert summary["layout"] == "flat"
        assert summary["mmap_capable"] is True
        assert "markov.json" in summary["removed"]
        assert (art / "catalogs.npz").exists()
        assert not (art / "markov.json").exists()
        assert not (art / "degrees.json").exists()
        mapped = StatisticsStore.load(art, mmap=True)
        assert estimates_of(mapped) == estimates_of(built_store)

    def test_repack_refuses_unfolded_deltas(
        self, capsys, built_store, tmp_path
    ):
        art = tmp_path / "art"
        built_store.save(art, layout="json")
        manifest_path = art / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        # Simulate an artifact with live delta generations beyond the
        # compacted base: repack must refuse (it only rewrites the base
        # files and would silently shadow the patches otherwise).
        payload["generation"] = int(payload.get("generation", 0)) + 1
        manifest_path.write_text(json.dumps(payload))
        code, _, err = self.run_cli(capsys, "stats", "repack", str(art))
        assert code == 2
        assert "compact" in err

    def test_repack_missing_dir_exits_2(self, capsys, tmp_path):
        code, _, err = self.run_cli(
            capsys, "stats", "repack", str(tmp_path / "nope")
        )
        assert code == 2
        assert err
