"""Tests for the textual pattern syntax."""

import pytest

from repro.errors import PatternError
from repro.query import QueryPattern, format_pattern, parse_pattern


class TestParse:
    def test_forward_chain(self):
        pattern = parse_pattern("a1 -[A]-> a2 -[B]-> a3")
        assert pattern == QueryPattern([("a1", "a2", "A"), ("a2", "a3", "B")])

    def test_backward_hop(self):
        pattern = parse_pattern("a1 <-[A]- a2")
        assert pattern == QueryPattern([("a2", "a1", "A")])

    def test_mixed_directions(self):
        pattern = parse_pattern("a -[X]-> b <-[Y]- c")
        assert pattern == QueryPattern([("a", "b", "X"), ("c", "b", "Y")])

    def test_multiple_chains(self):
        pattern = parse_pattern("a -[A]-> b, b -[B]-> c; c -[C]-> a")
        assert len(pattern) == 3

    def test_whitespace_tolerance(self):
        pattern = parse_pattern("  a-[A]->b ")
        assert pattern == QueryPattern([("a", "b", "A")])

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("   ")

    def test_chain_without_edge_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("lonely")

    def test_garbage_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("a -[A]-> b ???")


class TestRoundtrip:
    def test_format_then_parse(self):
        pattern = QueryPattern(
            [("a1", "a2", "A"), ("a3", "a2", "B"), ("a3", "a4", "C")]
        )
        assert parse_pattern(format_pattern(pattern)) == pattern
