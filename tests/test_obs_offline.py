"""The offline observability plane and the ``repro obs`` toolkit.

Covers the PR-10 surface: exposition escaping round-trips (property
tested) and malformed-input errors, the slow-query-off switch, keep-N
trace-log rotation (including concurrent forked writers racing the
shift), merge semantics for disjoint and type-colliding families, the
instrumented builders (``build_statistics``, ``apply_updates``,
``replay_graph``), the shared-plane steal/prune counters, the audit
probe's NDJSON records, the analysis functions, and the CLI verbs
end to end.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs import (
    LATENCY_BUCKETS_MS,
    JobTelemetry,
    MetricsRegistry,
    NdjsonSink,
    Telemetry,
    audit_report,
    grep_trace,
    load_records,
    merge_expositions,
    parse_exposition,
    quantile_from_buckets,
    span_profile,
    summarize,
    write_textfile,
)


def run_cli(capsys, *argv):
    capsys.readouterr()
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------
# Satellite: exposition escaping
# ----------------------------------------------------------------------
class TestEscapingRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(
                codec="utf-8", exclude_categories=("Cs",)
            ),
            max_size=40,
        )
    )
    def test_label_values_round_trip(self, value):
        registry = MetricsRegistry()
        counter = registry.counter("rt_total", "help.", labels=("q",))
        counter.inc(q=value)
        parsed = parse_exposition(registry.render())
        assert parsed.value("rt_total", q=value) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(help_text=st.text(max_size=60).filter(lambda s: s.strip()))
    def test_help_text_round_trips(self, help_text):
        registry = MetricsRegistry()
        registry.counter("rt_total", help_text).inc()
        text = registry.render()
        # Newlines in help must not break line framing.
        parsed = parse_exposition(text)
        assert parsed.value("rt_total") == 1.0
        # The HELP survives modulo the leading/trailing whitespace the
        # line format cannot represent.
        assert parsed.helps["rt_total"].strip() == help_text.strip()

    def test_newline_in_help_keeps_exposition_parseable(self):
        registry = MetricsRegistry()
        registry.counter("nl_total", "line one\nline two").inc()
        text = registry.render()
        assert "\nline two" not in text  # escaped, not raw
        assert parse_exposition(text).value("nl_total") == 1.0

    @pytest.mark.parametrize(
        "line",
        [
            'c_total{q="unterminated} 1',
            "c_total{noequals} 1",
            'c_total{="x"} 1',
            "c_total{q=bare} 1",
        ],
    )
    def test_malformed_labels_raise_value_error(self, line):
        with pytest.raises(ValueError):
            parse_exposition(line)

    def test_foreign_unknown_escape_is_lossless(self):
        parsed = parse_exposition('c_total{q="a\\tb"} 1')
        labels = dict(
            next(iter(parsed.family("c_total").keys()))
        )
        assert labels["q"] == "a\\tb"  # backslash kept, not dropped


# ----------------------------------------------------------------------
# Satellite: slow-query threshold 0 disables the log
# ----------------------------------------------------------------------
class TestSlowQueryOff:
    def test_zero_threshold_logs_nothing(self, tmp_path):
        sink = NdjsonSink(tmp_path / "t.ndjson")
        telemetry = Telemetry(sink=sink, slow_query_ms=0.0)
        trace = telemetry.begin("estimate", "t1")
        telemetry.finish(trace, ok=True, seconds=3.0)  # 3000 ms
        telemetry.flush()
        telemetry.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "t.ndjson")
            .read_text()
            .splitlines()
        ]
        assert [r["type"] for r in records] == ["trace"]
        assert telemetry.slow_queries.total() == 0

    def test_positive_threshold_still_captures(self, tmp_path):
        sink = NdjsonSink(tmp_path / "t.ndjson")
        telemetry = Telemetry(sink=sink, slow_query_ms=5.0)
        trace = telemetry.begin("estimate", "t1")
        telemetry.finish(trace, ok=True, seconds=0.05)
        telemetry.flush()
        telemetry.close()
        kinds = [
            json.loads(line)["type"]
            for line in (tmp_path / "t.ndjson")
            .read_text()
            .splitlines()
        ]
        assert kinds == ["trace", "slow_query"]


# ----------------------------------------------------------------------
# Satellite: keep-N rotation
# ----------------------------------------------------------------------
class TestKeepNRotation:
    def test_keep_n_shifts_generations(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NdjsonSink(path, max_bytes=200, keep=3)
        for index in range(40):
            sink.write({"type": "trace", "index": index})
        sink.close()
        assert path.with_name("t.ndjson.1").exists()
        assert path.with_name("t.ndjson.2").exists()
        assert path.with_name("t.ndjson.3").exists()
        assert not path.with_name("t.ndjson.4").exists()
        # .2 holds strictly older records than .1.
        newest_in_2 = max(
            json.loads(line)["index"]
            for line in path.with_name("t.ndjson.2").read_text().splitlines()
        )
        oldest_in_1 = min(
            json.loads(line)["index"]
            for line in path.with_name("t.ndjson.1").read_text().splitlines()
        )
        assert newest_in_2 < oldest_in_1

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            NdjsonSink(tmp_path / "t.ndjson", keep=0)

    def test_concurrent_forked_writers_survive_rotation(self, tmp_path):
        """Siblings racing the keep-N shift drop no whole file of records.

        Each forked child writes its own numbered records through its
        own sink on the shared path; the inode check must land every
        record in *some* generation exactly once (the rotation-race
        fallback may not double-write or truncate).
        """
        path = tmp_path / "t.ndjson"
        workers, per_worker = 4, 60
        pids = []
        for worker in range(workers):
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    sink = NdjsonSink(path, max_bytes=256, keep=64)
                    for index in range(per_worker):
                        sink.write({"w": worker, "i": index})
                    sink.close()
                    status = 0
                finally:
                    os._exit(status)
            pids.append(pid)
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        found = []
        for candidate in [path] + [
            path.with_name(f"t.ndjson.{g}") for g in range(1, 65)
        ]:
            if not candidate.exists():
                continue
            for line in candidate.read_text().splitlines():
                record = json.loads(line)  # no torn lines
                found.append((record["w"], record["i"]))
        expected = {
            (worker, index)
            for worker in range(workers)
            for index in range(per_worker)
        }
        # keep=64 far exceeds the ~15 generations 240 short records can
        # fill (even doubled by racing shifts), so nothing ages out:
        # every record must land in exactly one generation.
        assert len(found) == len(set(found))
        assert set(found) == expected

    def test_reopen_follows_external_rotation_inode(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NdjsonSink(path, max_bytes=1 << 20, keep=2)
        sink.write({"n": 1})
        os.replace(path, path.with_name("t.ndjson.1"))
        sink.write({"n": 2})
        sink.close()
        assert json.loads(path.read_text())["n"] == 2


# ----------------------------------------------------------------------
# Satellite: merge_expositions semantics
# ----------------------------------------------------------------------
class TestMergeExpositions:
    def test_disjoint_families_union(self):
        a = MetricsRegistry()
        a.counter("only_a_total", "a.").inc(3)
        b = MetricsRegistry()
        b.counter("only_b_total", "b.").inc(5)
        merged = parse_exposition(
            merge_expositions([a.render(), b.render()])
        )
        assert merged.value("only_a_total") == 3
        assert merged.value("only_b_total") == 5

    def test_mixed_type_collision_keeps_first_summable(self):
        a = MetricsRegistry()
        a.counter("skewed", "v1.").inc(2)
        b = MetricsRegistry()
        b.gauge("skewed", "v2.").set(99)
        c = MetricsRegistry()
        c.counter("skewed", "v1.").inc(7)
        merged = parse_exposition(
            merge_expositions([a.render(), b.render(), c.render()])
        )
        assert merged.types["skewed"] == "counter"
        assert merged.value("skewed") == 9  # gauge's 99 never summed in

    def test_histogram_vs_counter_collision_drops_dissenter(self):
        a = MetricsRegistry()
        hist = a.histogram("lat_ms", "v1.", (1, 10))
        hist.observe(0.5)
        b = MetricsRegistry()
        b.counter("lat_ms", "v2.").inc(100)
        merged = parse_exposition(
            merge_expositions([a.render(), b.render()])
        )
        assert merged.types["lat_ms"] == "histogram"
        assert merged.value("lat_ms_count") == 1
        assert ("lat_ms", ()) not in merged.samples


# ----------------------------------------------------------------------
# Tentpole: instrumented offline builders
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def example_graph():
    from repro.datasets.presets import running_example_graph

    return running_example_graph()


class TestBuildInstrumentation:
    def test_build_emits_level_spans_and_counters(
        self, tmp_path, example_graph
    ):
        from repro.stats import StatsBuildConfig, build_statistics

        telemetry = JobTelemetry(
            "stats.build",
            trace_log=tmp_path / "t.ndjson",
            metrics_out=tmp_path / "m.prom",
        )
        build_statistics(
            example_graph,
            StatsBuildConfig(h=2),
            jobs=2,
            telemetry=telemetry,
        )
        telemetry.finish(ok=True)
        record = json.loads((tmp_path / "t.ndjson").read_text())
        levels = [s for s in record["spans"] if s["name"] == "level"]
        shards = [s for s in record["spans"] if s["name"] == "shard"]
        assert [span["level"] for span in levels] == [1, 2]
        for span in levels:
            assert {"examined", "stored", "frontier", "jobs"} <= set(span)
        assert shards and all(
            span["parent"] in {l["span"] for l in levels} for span in shards
        )
        exposition = parse_exposition((tmp_path / "m.prom").read_text())
        assert exposition.value("repro_build_levels_total") == 2
        assert exposition.value("repro_build_examined_total") > 0
        assert exposition.value("repro_build_edges_per_second") > 0

    def test_telemetry_does_not_change_artifact_bytes(
        self, tmp_path, example_graph
    ):
        from repro.stats import StatsBuildConfig, build_statistics

        plain = build_statistics(example_graph, StatsBuildConfig(h=2))
        telemetry = JobTelemetry("stats.build")
        traced = build_statistics(
            example_graph, StatsBuildConfig(h=2), telemetry=telemetry
        )
        assert plain.markov.to_artifact() == traced.markov.to_artifact()
        assert plain.degrees.to_artifact() == traced.degrees.to_artifact()


class TestDeltaInstrumentation:
    def _artifact(self, tmp_path, graph):
        from repro.stats import StatsBuildConfig, build_statistics

        store = build_statistics(
            graph, StatsBuildConfig(h=2), dataset_name="example"
        )
        directory = tmp_path / "art"
        store.save(directory)
        return directory

    def test_apply_counters_spans_and_lineage_age(
        self, tmp_path, example_graph
    ):
        from repro.delta import apply_updates
        from repro.delta.updates import UpdateBatch
        from repro.stats import StatisticsStore

        directory = self._artifact(tmp_path, example_graph)
        store = StatisticsStore.load(directory, graph=example_graph)
        telemetry = JobTelemetry("updates.apply")
        outcome = apply_updates(
            store,
            UpdateBatch.from_payload([["+", 0, 5, "B"]]),
            directory=directory,
            telemetry=telemetry,
        )
        assert outcome.mode == "incremental"
        applies = telemetry.registry.get("repro_delta_applies_total")
        assert applies.value(mode="incremental") == 1
        names = [span.name for span in telemetry.trace.spans]
        assert "maintain" in names and "persist" in names
        # First apply: no previous generation, so no lineage age yet.
        assert telemetry.registry.get("repro_delta_lineage_age_seconds") is None

        second = JobTelemetry("updates.apply")
        apply_updates(
            store,
            UpdateBatch.from_payload([["+", 1, 6, "B"]]),
            directory=directory,
            telemetry=second,
        )
        age = second.registry.get("repro_delta_lineage_age_seconds")
        assert age is not None and age.value() >= 0.0
        assert second.registry.get("repro_delta_generation").value() == 2

    def test_replay_graph_emits_generation_spans(
        self, tmp_path, example_graph
    ):
        from repro.delta import apply_updates, replay_graph
        from repro.delta.updates import UpdateBatch
        from repro.stats import StatisticsStore

        directory = self._artifact(tmp_path, example_graph)
        store = StatisticsStore.load(directory, graph=example_graph)
        apply_updates(
            store,
            UpdateBatch.from_payload([["+", 0, 5, "B"]]),
            directory=directory,
        )
        telemetry = JobTelemetry("updates.replay")
        replay_graph(example_graph, directory, telemetry=telemetry)
        spans = [
            span for span in telemetry.trace.spans
            if span.name == "generation"
        ]
        assert len(spans) == 1 and spans[0].attrs["generation"] == 1
        assert (
            telemetry.registry.get(
                "repro_delta_replayed_generations_total"
            ).total()
            == 1
        )


# ----------------------------------------------------------------------
# Tentpole: shared-plane steal/prune counters + segment usage
# ----------------------------------------------------------------------
class TestPlaneCounters:
    def test_steal_and_segment_usage(self, tmp_path, monkeypatch):
        import numpy as np

        from repro.stats.shm import SharedArtifactPlane

        monkeypatch.setenv("REPRO_SHM_DIR", str(tmp_path))
        plane = SharedArtifactPlane()
        # A dead builder's claim: attaching steals it.
        key = "deadbeef" * 3
        (tmp_path / f"repro-clm-{key}").write_text("999999999")
        assert plane.try_attach(key) is None
        assert plane.stats()["steals"] == 1

        meta, arrays, handle = plane.acquire(
            key, lambda: ({"v": 1}, {"a": np.arange(4, dtype=np.float64)})
        )
        stats = plane.stats()
        assert stats["publishes"] == 1
        assert stats["segments"] == 1
        assert stats["segment_bytes"] > 0
        handle.close()

    def test_prune_counter_counts_dead_pids(self, tmp_path, monkeypatch):
        import struct

        import numpy as np

        from repro.stats.shm import PID_TABLE_OFFSET, SharedArtifactPlane

        monkeypatch.setenv("REPRO_SHM_DIR", str(tmp_path))
        plane = SharedArtifactPlane()
        _, _, handle = plane.acquire(
            "feedface" * 3,
            lambda: ({"v": 1}, {"a": np.zeros(2, dtype=np.float64)}),
        )
        # Plant a dead pid in the refcount table, then trigger a sweep.
        struct.pack_into("<q", handle._buf, PID_TABLE_OFFSET + 8, 999999999)
        handle._mutate_pids(lambda pids: pids)
        assert plane.stats()["prunes"] >= 1
        handle.close()


# ----------------------------------------------------------------------
# Tentpole: audit probe NDJSON records
# ----------------------------------------------------------------------
class TestAuditRecords:
    def test_probe_writes_audit_records_to_sink(
        self, tmp_path, example_graph
    ):
        from repro.obs import AuditProbe
        from repro.query.parser import parse_pattern
        from repro.stats import StatsBuildConfig, build_statistics

        sink = NdjsonSink(tmp_path / "t.ndjson")
        probe = AuditProbe(
            MetricsRegistry(),
            lambda tenant: example_graph,
            rate=1.0,
            walk_ratio=1.0,
            sink=sink,
        )
        store = build_statistics(example_graph, StatsBuildConfig(h=2))
        query = "a -[A]-> b -[B]-> c"
        estimate = store.session().estimate(parse_pattern(query))
        assert probe.maybe_sample("t1", query, {"max-hop-max": estimate})
        probe.drain(timeout=30.0)
        probe.stop()
        sink.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "t.ndjson").read_text().splitlines()
        ]
        audits = [r for r in records if r["type"] == "audit"]
        assert len(audits) == 1
        record = audits[0]
        assert record["tenant"] == "t1"
        assert record["query"] == query
        assert record["shape_class"] == "acyclic-2e"
        assert record["estimates"]["max-hop-max"] == estimate
        assert record["q_errors"]["max-hop-max"] >= 1.0
        assert record["truth"] >= 0.0


# ----------------------------------------------------------------------
# Tentpole: the analysis functions
# ----------------------------------------------------------------------
def _trace(trace_id, verb, wall_ms, spans=(), **extra):
    return {
        "type": "trace",
        "trace_id": trace_id,
        "verb": verb,
        "ts": 1000.0,
        "pid": 1,
        "ok": True,
        "wall_ms": wall_ms,
        "spans": list(spans),
        **extra,
    }


class TestAnalyze:
    def test_summarize_p99_matches_server_histogram_bucketing(self):
        walls = [0.2, 0.4, 0.9, 3.0, 8.0, 40.0, 90.0, 400.0, 900.0, 2000.0]
        records = [
            _trace(f"t{i}", "estimate", wall) for i, wall in enumerate(walls)
        ]
        report = summarize(records)
        histogram = MetricsRegistry().histogram(
            "lat", "h.", LATENCY_BUCKETS_MS
        )
        for wall in walls:
            histogram.observe(wall)
        child = histogram.get_child()
        for quantile, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            expected = quantile_from_buckets(
                LATENCY_BUCKETS_MS, child.counts, quantile
            )
            assert report["latency_ms"][key] == pytest.approx(
                expected, rel=1e-9
            )

    def test_summarize_counts_and_slow_queries(self):
        records = [
            _trace("a", "estimate", 1.0, tenant="t1", shape="s1"),
            _trace("b", "estimate", 2.0, tenant="t1", shape="s1"),
            _trace("c", "stats", 3.0),
            {
                "type": "slow_query",
                "trace_id": "b",
                "verb": "estimate",
                "wall_ms": 900.0,
                "threshold_ms": 500.0,
            },
        ]
        records[2]["ok"] = False
        report = summarize(records)
        assert report["traces"] == 3
        assert report["errors"] == 1
        assert report["verbs"]["estimate"]["count"] == 2
        assert report["tenants"] == {"t1": 2}
        assert report["shapes"] == {"s1": 2}
        assert report["slow_queries"][0]["trace_id"] == "b"

    def test_span_profile_self_time_and_fan_in(self):
        leader = _trace(
            "lead",
            "estimate",
            10.0,
            spans=[
                {"span": "s1", "name": "exec", "start_ms": 0, "ms": 10.0},
                {
                    "span": "s2",
                    "name": "count",
                    "start_ms": 1,
                    "ms": 8.0,
                    "parent": "s1",
                },
            ],
        )
        follower = _trace(
            "follow",
            "estimate",
            9.0,
            spans=[
                {
                    "span": "s1",
                    "name": "coalesce",
                    "start_ms": 0,
                    "ms": 9.0,
                    "shared": "lead:s2",
                }
            ],
        )
        report = span_profile([leader, follower], top=5)
        stages = {row["stage"]: row for row in report["stages"]}
        assert stages["exec"]["self_ms"] == pytest.approx(2.0)
        assert stages["exec"]["total_ms"] == pytest.approx(10.0)
        assert stages["count"]["self_ms"] == pytest.approx(8.0)
        assert report["coalesce_fan_in"] == [
            {"leader_span": "lead:s2", "followers": 1}
        ]
        assert report["top_offenders"][0]["stage"] == "coalesce"

    def test_audit_report_cells_and_worst(self):
        records = [
            {
                "type": "audit",
                "tenant": "t1",
                "query": "a -[A]-> b",
                "shape_class": "acyclic-1e",
                "truth": 10.0,
                "estimates": {"MOLP": 20.0, "max-hop-max": 1000.0},
                "q_errors": {"MOLP": 2.0, "max-hop-max": 100.0},
            },
            {
                "type": "audit",
                "tenant": "t1",
                "query": "a -[B]-> b",
                "shape_class": "acyclic-1e",
                "truth": 4.0,
                "estimates": {"MOLP": 5.0},
                "q_errors": {"MOLP": 1.25},
            },
        ]
        report = audit_report(records, top=2)
        assert report["samples"] == 2
        cells = {
            (row["estimator"], row["shape_class"]): row
            for row in report["cells"]
        }
        assert cells[("MOLP", "acyclic-1e")]["count"] == 2
        assert cells[("max-hop-max", "acyclic-1e")]["max"] == 100.0
        worst = report["worst"][0]
        assert worst["estimator"] == "max-hop-max"
        assert worst["q_error"] == 100.0
        assert worst["truth"] == 10.0

    def test_grep_trace_pulls_followers_by_shared_ref(self):
        leader = _trace("lead", "estimate", 5.0)
        follower = _trace(
            "follow",
            "estimate",
            4.0,
            spans=[
                {
                    "span": "s1",
                    "name": "coalesce",
                    "start_ms": 0,
                    "ms": 4.0,
                    "shared": "lead:s2",
                }
            ],
        )
        unrelated = _trace("other", "estimate", 1.0)
        report = grep_trace([leader, follower, unrelated], "lead")
        assert report["matches"] == 2
        ids = [record["trace_id"] for record in report["records"]]
        assert set(ids) == {"lead", "follow"}

    def test_load_records_reads_rotated_chain_and_skips_torn(
        self, tmp_path
    ):
        (tmp_path / "t.ndjson.2").write_text('{"n": 1}\n')
        (tmp_path / "t.ndjson.1").write_text('{"n": 2}\n{"torn": ')
        (tmp_path / "t.ndjson").write_text('{"n": 3}\n')
        records = load_records([tmp_path / "t.ndjson"])
        assert [record["n"] for record in records] == [1, 2, 3]


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------
class TestObsCli:
    @pytest.fixture()
    def traced_build(self, tmp_path):
        log = tmp_path / "traces.ndjson"
        metrics = tmp_path / "metrics.prom"
        assert main([
            "stats", "build", "--dataset", "example",
            "--out", str(tmp_path / "art"), "--jobs", "2",
            "--trace-log", str(log), "--metrics-out", str(metrics),
        ]) == 0
        return log, metrics

    def test_summarize_and_spans(self, capsys, traced_build):
        log, metrics = traced_build
        code, out, _ = run_cli(capsys, "obs", "summarize", str(log))
        assert code == 0
        report = json.loads(out)
        assert report["verbs"]["stats.build"]["count"] == 1
        assert report["latency_ms"]["p99"] > 0
        code, out, _ = run_cli(capsys, "obs", "spans", str(log))
        assert code == 0
        stages = {row["stage"] for row in json.loads(out)["stages"]}
        assert "level" in stages and "shard" in stages

    def test_metrics_out_is_parseable_with_nonzero_counters(
        self, traced_build
    ):
        _, metrics = traced_build
        exposition = parse_exposition(metrics.read_text())
        assert exposition.value("repro_build_levels_total") > 0
        assert exposition.types["repro_build_levels_total"] == "counter"

    def test_grep_finds_the_build_trace(self, capsys, traced_build):
        log, _ = traced_build
        trace_id = json.loads(log.read_text().splitlines()[0])["trace_id"]
        code, out, _ = run_cli(
            capsys, "obs", "grep", str(log), "--trace-id", trace_id
        )
        assert code == 0
        report = json.loads(out)
        assert report["matches"] == 1
        assert report["records"][0]["verb"] == "stats.build"

    def test_grep_requires_trace_id(self, capsys, traced_build):
        log, _ = traced_build
        code, _, err = run_cli(capsys, "obs", "grep", str(log))
        assert code == 2 and "--trace-id" in err

    def test_missing_log_is_exit_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "obs", "summarize", str(tmp_path / "nope.ndjson")
        )
        assert code == 2 and "no such trace log" in err

    def test_audit_verb_over_synthetic_records(self, capsys, tmp_path):
        log = tmp_path / "t.ndjson"
        log.write_text(
            json.dumps(
                {
                    "type": "audit",
                    "shape_class": "acyclic-1e",
                    "query": "a -[A]-> b",
                    "truth": 2.0,
                    "estimates": {"MOLP": 4.0},
                    "q_errors": {"MOLP": 2.0},
                }
            )
            + "\n"
        )
        code, out, _ = run_cli(capsys, "obs", "audit", str(log))
        assert code == 0
        report = json.loads(out)
        assert report["samples"] == 1
        assert report["cells"][0]["estimator"] == "MOLP"

    def test_updates_apply_writes_job_trace(self, capsys, tmp_path):
        art = tmp_path / "art"
        assert main([
            "stats", "build", "--dataset", "example", "--out", str(art)
        ]) == 0
        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps({"updates": [["+", 0, 5, "B"]]}))
        log = tmp_path / "apply.ndjson"
        code, out, _ = run_cli(
            capsys, "updates", "apply", "--stats-dir", str(art),
            "--updates", str(ops), "--trace-log", str(log),
            "--metrics-out", str(tmp_path / "apply.prom"),
        )
        assert code == 0
        record = json.loads(log.read_text().splitlines()[-1])
        assert record["verb"] == "updates.apply"
        assert record["mode"] == "incremental"
        assert any(s["name"] == "maintain" for s in record["spans"])
        exposition = parse_exposition(
            (tmp_path / "apply.prom").read_text()
        )
        assert (
            exposition.value(
                "repro_delta_applies_total", mode="incremental"
            )
            == 1
        )

    def test_repack_takes_telemetry_flags(self, capsys, tmp_path):
        art = tmp_path / "art"
        assert main([
            "stats", "build", "--dataset", "example", "--out", str(art)
        ]) == 0
        log = tmp_path / "repack.ndjson"
        code, out, _ = run_cli(
            capsys, "stats", "repack", str(art), "--trace-log", str(log)
        )
        assert code == 0
        assert json.loads(out)["layout"] == "flat"
        record = json.loads(log.read_text())
        assert record["verb"] == "stats.repack"
        assert {s["name"] for s in record["spans"]} == {"load", "save"}


class TestWriteTextfile:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total", "x.").inc()
        out = tmp_path / "deep" / "metrics.prom"
        write_textfile(out, registry)
        assert parse_exposition(out.read_text()).value("x_total") == 1
        assert list(out.parent.glob("*.tmp.*")) == []
