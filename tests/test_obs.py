"""Unit tests of the observability plane (``repro.obs``).

Covers the metrics registry (labelled families, bisect bucketing,
Prometheus text exposition, parse + fleet merge round-trips,
bucket-derived quantiles), the span/trace model (tiling, parents,
follower references, stage totals), the rotating NDJSON sink, and the
sampled WanderJoin q-error audit probe.
"""

import json
import math

import pytest

from repro.obs import (
    LATENCY_BUCKETS_MS,
    AuditProbe,
    MetricsRegistry,
    NdjsonSink,
    RequestTrace,
    Telemetry,
    merge_expositions,
    new_trace_id,
    parse_exposition,
    quantile_from_buckets,
    shape_class,
)


# ----------------------------------------------------------------------
# Counters / gauges / histograms
# ----------------------------------------------------------------------
class TestMetricFamilies:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        requests = registry.counter("t_total", "help.", labels=("verb",))
        requests.inc(verb="estimate")
        requests.inc(verb="estimate")
        requests.inc(verb="stats")
        assert requests.value(verb="estimate") == 2
        assert requests.value(verb="stats") == 1
        assert requests.value(verb="ping") == 0
        assert requests.total() == 3

    def test_label_schema_is_enforced(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help.", labels=("verb",))
        with pytest.raises(ValueError):
            counter.inc(tenant="x")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label

    def test_register_returns_existing_and_rejects_schema_change(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "help.", labels=("verb",))
        again = registry.counter("t_total", "help.", labels=("verb",))
        assert again is first
        with pytest.raises(ValueError):
            registry.counter("t_total", "help.", labels=("other",))
        with pytest.raises(ValueError):
            registry.gauge("t_total", "help.", labels=("verb",))

    def test_histogram_bucket_edges_are_le(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help.", (1.0, 5.0, 10.0))
        histogram.observe(1.0)   # == bound: belongs to the <=1 bucket
        histogram.observe(1.001)
        histogram.observe(10.0)
        histogram.observe(99.0)  # overflow -> +Inf slot
        child = histogram.get_child()
        assert child.counts == [1, 1, 1, 1]
        assert child.count == 4
        assert child.max == 99.0
        assert child.sum == pytest.approx(111.001)

    def test_latency_buckets_include_submillisecond_bounds(self):
        # The satellite: 0.1/0.25/0.5 ms resolution for the warm path.
        assert LATENCY_BUCKETS_MS[:3] == (0.1, 0.25, 0.5)
        assert list(LATENCY_BUCKETS_MS) == sorted(LATENCY_BUCKETS_MS)

    def test_callback_metrics_poll_at_render(self):
        registry = MetricsRegistry()
        state = {"n": 3}
        registry.counter("cb_total", "help.", callback=lambda: state["n"])
        assert "cb_total 3" in registry.render()
        state["n"] = 8
        assert "cb_total 8" in registry.render()

    def test_callback_metric_with_labelled_map(self):
        registry = MetricsRegistry()
        registry.gauge(
            "age_seconds",
            "help.",
            labels=("tenant",),
            callback=lambda: {("t1",): 1.5, ("t2",): 2.5},
        )
        exposition = parse_exposition(registry.render())
        assert exposition.value("age_seconds", tenant="t1") == 1.5
        assert exposition.value("age_seconds", tenant="t2") == 2.5


class TestQuantiles:
    def test_empty_histogram_is_zero(self):
        assert quantile_from_buckets((1.0, 2.0), [0, 0, 0], 0.5) == 0.0

    def test_interpolates_inside_the_winning_bucket(self):
        # 10 samples uniformly inside (1, 2]: p50 is mid-bucket.
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 10, 0, 0]
        assert quantile_from_buckets(bounds, counts, 0.5) == pytest.approx(1.5)
        assert quantile_from_buckets(bounds, counts, 1.0) == pytest.approx(2.0)

    def test_overflow_bucket_reports_last_bound(self):
        bounds = (1.0, 2.0)
        counts = [0, 0, 5]
        assert quantile_from_buckets(bounds, counts, 0.99) == 2.0

    def test_agrees_with_exact_quantile_on_dense_data(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", "help.", tuple(float(b) for b in range(1, 101))
        )
        values = [float(v) for v in range(1, 101)]
        for value in values:
            histogram.observe(value - 0.5)
        child = histogram.get_child()
        p95 = quantile_from_buckets(histogram.buckets, child.counts, 0.95)
        assert abs(p95 - 94.5) <= 1.0


# ----------------------------------------------------------------------
# Exposition render / parse / merge
# ----------------------------------------------------------------------
class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Requests.", labels=("verb",))
        counter.inc(verb="estimate")
        counter.inc(7, verb="stats")
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(4)
        histogram = registry.histogram(
            "lat_ms", "Latency.", (1.0, 10.0), labels=("tenant",)
        )
        histogram.observe(0.5, tenant="t1")
        histogram.observe(3.0, tenant="t1")
        histogram.observe(50.0, tenant="t1")
        return registry

    def test_render_parse_round_trip(self):
        text = self._registry().render()
        exposition = parse_exposition(text)
        assert exposition.types["req_total"] == "counter"
        assert exposition.types["depth"] == "gauge"
        assert exposition.types["lat_ms"] == "histogram"
        assert exposition.value("req_total", verb="estimate") == 1
        assert exposition.value("req_total", verb="stats") == 7
        assert exposition.value("depth") == 4
        # Cumulative le semantics on the wire.
        assert exposition.value("lat_ms_bucket", tenant="t1", le="1") == 1
        assert exposition.value("lat_ms_bucket", tenant="t1", le="10") == 2
        assert exposition.value("lat_ms_bucket", tenant="t1", le="+Inf") == 3
        assert exposition.value("lat_ms_count", tenant="t1") == 3
        assert exposition.value("lat_ms_sum", tenant="t1") == 53.5

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help.", labels=("q",))
        counter.inc(q='a"b\\c\nd')
        exposition = parse_exposition(registry.render())
        assert exposition.value("c_total", q='a"b\\c\nd') == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("req_total{verb=estimate} 1")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x sideways\nx 1")

    def test_merge_sums_counters_and_histograms_drops_gauges(self):
        first = self._registry().render()
        second = self._registry().render()
        merged = parse_exposition(merge_expositions([first, second]))
        assert merged.value("req_total", verb="estimate") == 2
        assert merged.value("req_total", verb="stats") == 14
        assert merged.value("lat_ms_bucket", tenant="t1", le="+Inf") == 6
        assert merged.value("lat_ms_sum", tenant="t1") == 107.0
        # Gauges are per-process point-in-time values: no meaningful sum.
        assert merged.family("depth") == {}

    def test_merged_output_is_itself_valid_exposition(self):
        merged = merge_expositions([self._registry().render()])
        reparsed = parse_exposition(merged)
        assert reparsed.value("req_total", verb="stats") == 7


# ----------------------------------------------------------------------
# Traces and spans
# ----------------------------------------------------------------------
class TestRequestTrace:
    def test_trace_ids_are_minted_or_adopted(self):
        assert RequestTrace("estimate").trace_id != new_trace_id()
        assert RequestTrace("estimate", trace_id="abc123").trace_id == "abc123"

    def test_span_context_manager_measures(self):
        trace = RequestTrace("estimate", tenant="t1")
        with trace.span("exec") as span:
            pass
        assert span.ms >= 0.0
        assert trace.spans == [span]

    def test_parents_refs_and_attrs_survive_to_the_record(self):
        trace = RequestTrace("estimate", tenant="t1", trace_id="tid")
        import time as time_module

        t0 = time_module.perf_counter()
        exec_span = trace.add_span("exec", t0, 0.010)
        child = trace.add_span(
            "count", t0, 0.004, parent=exec_span.span_id, estimator="MOLP"
        )
        assert trace.ref(child) == f"tid:{child.span_id}"
        trace.note(shape="((0, 1, 'A'),)")
        record = trace.record(ok=True, wall_ms=11.0)
        assert record["type"] == "trace"
        assert record["trace_id"] == "tid"
        assert record["tenant"] == "t1"
        assert record["shape"] == "((0, 1, 'A'),)"
        by_name = {span["name"]: span for span in record["spans"]}
        assert by_name["count"]["parent"] == exec_span.span_id
        assert by_name["count"]["estimator"] == "MOLP"
        assert by_name["exec"]["ms"] == pytest.approx(10.0)

    def test_stage_totals_sum_repeated_stages(self):
        trace = RequestTrace("estimate")
        import time as time_module

        t0 = time_module.perf_counter()
        trace.add_span("count", t0, 0.002)
        trace.add_span("count", t0, 0.003)
        trace.add_span("queue", t0, 0.001)
        totals = trace.stage_totals()
        assert totals["count"] == pytest.approx(5.0)
        assert totals["queue"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# NDJSON sink
# ----------------------------------------------------------------------
class TestNdjsonSink:
    def test_writes_valid_ndjson(self, tmp_path):
        sink = NdjsonSink(tmp_path / "trace.ndjson")
        sink.write({"type": "trace", "n": 1})
        sink.write({"type": "slow_query", "n": 2})
        sink.close()
        lines = (tmp_path / "trace.ndjson").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["n"] for record in records] == [1, 2]

    def test_rotates_by_size(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        sink = NdjsonSink(path, max_bytes=4096)
        for n in range(200):
            sink.write({"n": n, "pad": "x" * 100})
        sink.close()
        rotated = tmp_path / "trace.ndjson.1"
        assert rotated.exists(), "sink never rotated"
        assert path.stat().st_size <= 4096
        # Both generations stay valid NDJSON.
        for file in (path, rotated):
            for line in file.read_text().splitlines():
                json.loads(line)

    def test_survives_external_rotation(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        sink = NdjsonSink(path)
        sink.write({"n": 1})
        path.rename(tmp_path / "elsewhere.ndjson")  # someone else rotated
        sink.write({"n": 2})
        sink.close()
        assert json.loads(path.read_text()) == {"n": 2}

    def test_never_raises_on_unwritable_path(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        sink = NdjsonSink(target)  # opening a directory fails with EISDIR
        sink.write({"n": 1})  # must swallow, not raise
        sink.close()


# ----------------------------------------------------------------------
# Telemetry bundle
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_disabled_begin_returns_none(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.begin("estimate", "t1") is None
        telemetry.finish(None, ok=True, seconds=0.1)  # no-op, no crash

    def test_finish_feeds_stage_histograms_and_slow_counter(self, tmp_path):
        sink = NdjsonSink(tmp_path / "trace.ndjson")
        telemetry = Telemetry(sink=sink, slow_query_ms=5.0)
        trace = telemetry.begin("estimate", "t1")
        import time as time_module

        trace.add_span("exec", time_module.perf_counter(), 0.010)
        telemetry.finish(trace, ok=True, seconds=0.010)
        telemetry.close()
        assert telemetry.slow_queries.value() == 1
        assert telemetry.trace_records.value() == 1
        records = [
            json.loads(line)
            for line in (tmp_path / "trace.ndjson").read_text().splitlines()
        ]
        kinds = [record["type"] for record in records]
        assert kinds == ["trace", "slow_query"]
        assert records[1]["threshold_ms"] == 5.0
        assert records[1]["spans"] == records[0]["spans"]


# ----------------------------------------------------------------------
# Audit probe
# ----------------------------------------------------------------------
class TestAuditProbe:
    def test_shape_class_buckets(self):
        from repro.query.parser import parse_pattern

        chain = parse_pattern("a -[A]-> b -[B]-> c")
        assert shape_class(chain) == "acyclic-2e"
        triangle = parse_pattern("a -[A]-> b, b -[B]-> c, c -[C]-> a")
        assert shape_class(triangle) == "cyclic-3e"

    def test_probe_publishes_q_error_histograms(self):
        from repro.datasets.presets import running_example_graph
        from repro.stats import StatsBuildConfig, build_statistics

        registry = MetricsRegistry()
        probe = AuditProbe(
            registry,
            lambda tenant: running_example_graph(),
            rate=1.0,
            walk_ratio=1.0,
        )
        store = build_statistics(
            running_example_graph(), StatsBuildConfig(h=2)
        )
        session = store.session()
        from repro.query.parser import parse_pattern

        query = "a -[A]-> b -[B]-> c"
        estimate = session.estimate(parse_pattern(query))
        sampled = probe.maybe_sample("t1", query, {"max-hop-max": estimate})
        assert sampled
        probe.drain(timeout=30.0)
        probe.stop()
        assert probe.samples.value(estimator="max-hop-max") == 1
        child = probe.q_error.get_child(
            estimator="max-hop-max", shape_class="acyclic-2e"
        )
        assert child is not None and child.count == 1
        q = child.sum
        assert q >= 1.0 and math.isfinite(q)

    def test_rate_zero_never_samples(self):
        probe = AuditProbe(
            MetricsRegistry(), lambda tenant: None, rate=0.0
        )
        assert not probe.maybe_sample("t1", "a -[A]-> b", {"MOLP": 1.0})

    def test_tenant_filter(self):
        probe = AuditProbe(
            MetricsRegistry(), lambda tenant: None, rate=1.0, tenant="ref"
        )
        assert not probe.maybe_sample("other", "a -[A]-> b", {"MOLP": 1.0})

    def test_unloadable_tenant_disables_itself(self):
        def exploding_loader(tenant):
            raise RuntimeError("no dataset")

        probe = AuditProbe(MetricsRegistry(), exploding_loader, rate=1.0)
        assert probe.maybe_sample("t1", "a -[A]-> b", {"MOLP": 1.0})
        probe.drain(timeout=10.0)
        probe.stop()
        assert "t1" in probe._disabled_tenants
        assert probe.dropped.value() == 1
        # Later samples for the dead tenant are refused at the gate.
        assert not probe.maybe_sample("t1", "a -[A]-> b", {"MOLP": 1.0})

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            AuditProbe(MetricsRegistry(), lambda tenant: None, rate=1.5)
