"""Tests for the §8 entropy-weighted CEG extension."""

import numpy as np
import pytest

from repro.catalog import EntropyCatalog, MarkovTable, degree_irregularity
from repro.core import LowestEntropyEstimator, lowest_entropy_estimate
from repro.engine import count_pattern
from repro.graph import LabeledDiGraph
from repro.query import QueryPattern, parse_pattern, templates


class TestDegreeIrregularity:
    def test_uniform_degrees_zero(self):
        counts = np.asarray([3.0, 3.0, 3.0, 3.0])
        assert degree_irregularity(counts, 4) == pytest.approx(0.0)

    def test_skewed_degrees_positive(self):
        counts = np.asarray([97.0, 1.0, 1.0, 1.0])
        assert degree_irregularity(counts, 4) > 1.0

    def test_zero_groups(self):
        assert degree_irregularity(np.asarray([1.0]), 1) == 0.0

    def test_empty_counts(self):
        assert degree_irregularity(np.asarray([]), 5) == 0.0

    def test_more_skew_more_irregular(self):
        mild = degree_irregularity(np.asarray([4.0, 3.0, 3.0, 2.0]), 4)
        harsh = degree_irregularity(np.asarray([9.0, 1.0, 1.0, 1.0]), 4)
        assert harsh > mild


class TestEntropyCatalog:
    def test_empty_intersection_is_free(self, tiny_graph):
        catalog = EntropyCatalog(tiny_graph)
        pattern = parse_pattern("x -[A]-> y")
        assert catalog.irregularity(pattern, frozenset()) == 0.0

    def test_cached(self, tiny_graph):
        catalog = EntropyCatalog(tiny_graph)
        pattern = parse_pattern("x -[A]-> y -[B]-> z")
        catalog.irregularity(pattern, frozenset({"y"}))
        entries = catalog.num_entries
        catalog.irregularity(pattern, frozenset({"y"}))
        assert catalog.num_entries == entries

    def test_uniform_relation_scores_zero(self):
        """A perfectly regular graph (every vertex degree 1) has exactly
        uniform extension degrees: irregularity 0."""
        n = 12
        triples = [(i, (i + 1) % n, "A") for i in range(n)]
        triples += [(i, (i + 2) % n, "B") for i in range(n)]
        graph = LabeledDiGraph.from_triples(triples, num_vertices=n)
        catalog = EntropyCatalog(graph)
        pattern = parse_pattern("x -[A]-> y -[B]-> z")
        assert catalog.irregularity(
            pattern, frozenset({"y"})
        ) == pytest.approx(0.0, abs=1e-9)

    def test_skewed_relation_scores_positive(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        pattern = QueryPattern([("x", "y", labels[0]), ("y", "z", labels[1])])
        catalog = EntropyCatalog(graph)
        assert catalog.irregularity(pattern, frozenset({"y"})) > 0.0


class TestLowestEntropyEstimator:
    def test_exact_when_whole_query_stored(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        estimator = LowestEntropyEstimator(markov)
        query = parse_pattern("x -[A]-> y -[B]-> z")
        truth = count_pattern(tiny_graph, query)
        assert estimator.estimate(query) == pytest.approx(truth)

    def test_within_ceg_estimate_range(self, medium_random_graph):
        """The chosen path's estimate is one of the CEG's estimates."""
        from repro.core import build_ceg_o, distinct_estimates

        graph = medium_random_graph
        labels = list(graph.labels)
        markov = MarkovTable(graph, h=2)
        estimator = LowestEntropyEstimator(markov)
        query = templates.fork(1, 2).with_labels(labels[:3])
        value = estimator.estimate(query)
        estimates = distinct_estimates(build_ceg_o(query, markov))
        assert min(estimates) - 1e-6 <= value <= max(estimates) + 1e-6

    def test_name(self, tiny_graph):
        markov = MarkovTable(tiny_graph, h=2)
        assert LowestEntropyEstimator(markov).name == "lowest-entropy"

    def test_function_form(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        markov = MarkovTable(graph, h=2)
        catalog = EntropyCatalog(graph)
        query = templates.path(3).with_labels(labels[:3])
        value = lowest_entropy_estimate(query, markov, catalog)
        assert value >= 0.0


class TestAblationFlags:
    def test_size_h_rule_off_adds_paths(self, medium_random_graph):
        """Disabling the size-h rule can only add formulas (paths)."""
        from repro.core import build_ceg_o

        graph = medium_random_graph
        labels = list(graph.labels)
        markov = MarkovTable(graph, h=3)
        query = templates.fork(2, 2).with_labels(labels[:4])
        strict = build_ceg_o(query, markov, size_h_rule=True)
        loose = build_ceg_o(query, markov, size_h_rule=False)
        assert loose.num_edges >= strict.num_edges

    def test_early_cycle_closing_off_adds_paths(self, medium_random_graph):
        from repro.core import build_ceg_o
        from repro.engine import PatternSampler

        graph = medium_random_graph
        sampler = PatternSampler(graph, seed=13)
        instance = sampler.sample_instance(templates.triangle(), max_tries=300)
        if instance is None:
            import pytest as _pytest

            _pytest.skip("no triangle instance")
        markov = MarkovTable(graph, h=3)
        with_rule = build_ceg_o(instance, markov, early_cycle_closing=True)
        without = build_ceg_o(instance, markov, early_cycle_closing=False)
        assert without.num_edges >= with_rule.num_edges
