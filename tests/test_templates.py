"""Tests for the query-template library."""

import random

import pytest

from repro.errors import PatternError
from repro.query import shape, templates


class TestBasicShapes:
    def test_path_size(self):
        assert len(templates.path(5)) == 5

    def test_path_rejects_zero(self):
        with pytest.raises(PatternError):
            templates.path(0)

    def test_star_center(self):
        star = templates.star(4)
        assert star.degree("v0") == 4

    def test_fork_is_running_example_shape(self):
        q5f = templates.fork(2, 3)
        assert len(q5f) == 5
        assert shape.is_acyclic(q5f)
        assert q5f.degree("v2") == 4  # path end + three branches

    def test_cycle_is_cyclic(self):
        assert shape.largest_cycle_length(templates.cycle(6)) == 6

    def test_clique_edge_count(self):
        assert len(templates.clique(4)) == 6

    def test_diamond_edge_count(self):
        assert len(templates.diamond_with_chord()) == 5

    def test_bowtie_shares_vertex(self):
        bowtie = templates.bowtie()
        assert bowtie.degree("c") == 4

    def test_square_with_triangle_size(self):
        assert len(templates.square_with_triangle()) == 7

    def test_square_with_two_triangles_size(self):
        assert len(templates.square_with_two_triangles()) == 8

    def test_petal_is_cyclic(self):
        petal = templates.petal(2, 3)
        assert len(petal) == 6
        assert shape.largest_cycle_length(petal) == 6

    def test_flower_size(self):
        assert len(templates.flower(3, 3)) == 6

    def test_random_tree_is_acyclic(self):
        rng = random.Random(3)
        for k in (3, 6, 9):
            tree = templates.random_tree(k, rng)
            assert len(tree) == k
            assert shape.is_acyclic(tree)

    def test_randomize_directions_preserves_shape(self):
        rng = random.Random(5)
        original = templates.path(4)
        flipped = templates.randomize_directions(original, rng)
        assert len(flipped) == 4
        assert set(flipped.variables) == set(original.variables)


class TestInventories:
    def test_job_templates_sizes(self):
        inventory = templates.job_templates()
        sizes = sorted(len(p) for p in inventory.values())
        assert sizes == [4, 4, 4, 4, 5, 5, 6]
        assert all(shape.is_acyclic(p) for p in inventory.values())

    def test_acyclic_templates_cover_all_depths(self):
        inventory = templates.acyclic_templates()
        for k in (6, 7, 8):
            depths = {
                shape.depth(p)
                for name, p in inventory.items()
                if name.startswith(f"acyclic_{k}e")
            }
            assert depths == set(range(2, k + 1))

    def test_cyclic_templates_are_cyclic(self):
        for name, pattern in templates.cyclic_templates().items():
            assert shape.largest_cycle_length(pattern) >= 3, name

    def test_gcare_acyclic_deterministic(self):
        a = templates.gcare_acyclic_templates(random.Random(0))
        b = templates.gcare_acyclic_templates(random.Random(0))
        assert a.keys() == b.keys()
        for name in a:
            assert a[name] == b[name]

    def test_gcare_cyclic_sizes(self):
        inventory = templates.gcare_cyclic_templates()
        assert len(inventory["gcare_9cycle"]) == 9
        assert len(inventory["gcare_6petal"]) == 6

    def test_placeholder_labels(self):
        for pattern in templates.job_templates().values():
            assert all(label.startswith("?") for label in pattern.labels)
