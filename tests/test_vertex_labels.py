"""Vertex-label support (§6.1's extension, realised as @-self-loops)."""

import pytest

from repro.catalog import DegreeCatalog, MarkovTable
from repro.core import OptimisticEstimator, molp_bound
from repro.engine import count_pattern
from repro.graph import (
    add_vertex_labels,
    vertex_label_relation,
    vertex_labels_of_pattern,
    with_vertex_label,
)
from repro.query import parse_pattern


@pytest.fixture(scope="module")
def labeled_graph(tiny_graph):
    """tiny_graph with vertex labels: sources are 'Src', hubs 'Hub'."""
    return add_vertex_labels(
        tiny_graph,
        {0: "Src", 1: "Src", 2: "Hub", 3: "Hub", 4: ["Hub", "Sink"]},
    )


class TestEncoding:
    def test_relation_name(self):
        assert vertex_label_relation("Person") == "@Person"

    def test_labels_added_as_self_loops(self, labeled_graph):
        relation = labeled_graph.relation("@Hub")
        assert relation.size == 3
        assert relation.has_edge(2, 2, labeled_graph.num_vertices)

    def test_multi_labels(self, labeled_graph):
        assert labeled_graph.cardinality("@Sink") == 1

    def test_original_relations_preserved(self, labeled_graph, tiny_graph):
        assert labeled_graph.cardinality("A") == tiny_graph.cardinality("A")

    def test_with_vertex_label_builds_atom(self):
        pattern = with_vertex_label(parse_pattern("x -[A]-> y"), "x", "Src")
        assert len(pattern) == 2
        loop = pattern.edges[1]
        assert loop.src == loop.dst == "x"
        assert loop.label == "@Src"

    def test_vertex_labels_of_pattern(self):
        pattern = with_vertex_label(
            with_vertex_label(parse_pattern("x -[A]-> y"), "x", "Src"),
            "y",
            "Hub",
        )
        assert vertex_labels_of_pattern(pattern) == {
            "x": ["Src"], "y": ["Hub"],
        }


class TestCountingWithVertexLabels:
    def test_predicate_restricts_count(self, labeled_graph):
        plain = parse_pattern("x -[A]-> y")
        restricted = with_vertex_label(plain, "x", "Src")
        all_count = count_pattern(labeled_graph, plain)
        src_count = count_pattern(labeled_graph, restricted)
        # A edges: 0->2, 1->2, 0->3; all sources are Src-labeled.
        assert all_count == 3 and src_count == 3
        hub_sources = count_pattern(
            labeled_graph, with_vertex_label(plain, "x", "Hub")
        )
        assert hub_sources == 0

    def test_two_predicates(self, labeled_graph):
        query = with_vertex_label(
            with_vertex_label(parse_pattern("x -[B]-> y"), "x", "Hub"),
            "y",
            "Sink",
        )
        # B edges into the Sink-labeled vertex 4: 2->4, 3->4 (both Hub).
        assert count_pattern(labeled_graph, query) == 2


class TestEstimationWithVertexLabels:
    def test_markov_stores_labeled_entries(self, labeled_graph):
        markov = MarkovTable(labeled_graph, h=2)
        entry = with_vertex_label(parse_pattern("x -[A]-> y"), "y", "Hub")
        assert markov.cardinality(entry) == 3

    def test_optimistic_estimate_runs(self, labeled_graph):
        markov = MarkovTable(labeled_graph, h=2)
        estimator = OptimisticEstimator(markov)
        query = with_vertex_label(
            parse_pattern("x -[A]-> y -[B]-> z"), "y", "Hub"
        )
        estimate = estimator.estimate(query)
        truth = count_pattern(labeled_graph, query)
        assert estimate >= 0
        assert truth > 0

    def test_molp_still_upper_bound(self, labeled_graph):
        catalog = DegreeCatalog(labeled_graph, h=1)
        query = with_vertex_label(
            parse_pattern("x -[A]-> y -[B]-> z"), "y", "Hub"
        )
        truth = count_pattern(labeled_graph, query)
        assert molp_bound(query, catalog) >= truth - 1e-6
