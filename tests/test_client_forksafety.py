"""Client-side regression tests: fork-safety and readiness deadlines.

Two of the ISSUE's satellite bugfixes live here:

* an :class:`EstimationClient` connected before ``fork()`` must not let
  parent and child interleave writes on the shared socket fd — the
  child transparently reconnects when it notices the pid changed;
* ``wait_until_ready(timeout=T)`` must return or raise within ~T even
  when the host accepts SYNs slowly (each probe's socket timeout was a
  hardcoded 5 s, overshooting small deadlines by seconds).
"""

from __future__ import annotations

import json
import os
import socket
import time

import pytest

from repro.datasets.presets import running_example_graph
from repro.server import (
    EstimationClient,
    ServerConfig,
    ServerUnavailable,
    StoreRegistry,
    ThreadedServer,
    wait_until_ready,
)
from repro.stats import StatsBuildConfig, build_statistics

QUERY = "a -[A]-> b -[B]-> c"


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("forksafety")
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(base)
    return base


@pytest.fixture()
def server(artifact_dir):
    registry = StoreRegistry()
    registry.load("example", artifact_dir)
    with ThreadedServer(registry, ServerConfig(port=0)) as threaded:
        yield threaded


class TestForkSafety:
    def test_forked_child_reconnects_and_parent_survives(self, server):
        """A pre-fork connection serves both processes without desync.

        The child must notice the inherited fd belongs to the parent
        and reconnect; the parent's stream must keep its framing — the
        regression was both processes writing on one socket.
        """
        client = EstimationClient(server.host, server.port)
        try:
            before = client.estimate("example", QUERY)["estimates"]
            parent_pid = os.getpid()
            read_fd, write_fd = os.pipe()
            child = os.fork()
            if child == 0:
                # Child: report via the pipe and never unwind into the
                # pytest stack (os._exit skips teardown machinery).
                status = 1
                try:
                    os.close(read_fd)
                    result = client.estimate("example", QUERY)
                    payload = {
                        "estimates": result["estimates"],
                        "reconnected": client._owner_pid == os.getpid()
                        and client._owner_pid != parent_pid,
                    }
                    os.write(write_fd, json.dumps(payload).encode())
                    os.close(write_fd)
                    status = 0
                finally:
                    os._exit(status)
            os.close(write_fd)
            chunks = b""
            while True:
                chunk = os.read(read_fd, 65536)
                if not chunk:
                    break
                chunks += chunk
            os.close(read_fd)
            _, wstatus = os.waitpid(child, 0)
            assert os.waitstatus_to_exitcode(wstatus) == 0, (
                "forked child failed to estimate over the inherited client"
            )
            reported = json.loads(chunks)
            assert reported["reconnected"], (
                "child kept using the parent's socket fd instead of "
                "reconnecting"
            )
            assert reported["estimates"] == before
            # The parent's connection (and its framing) must be intact.
            assert client._owner_pid == parent_pid
            after = client.estimate("example", QUERY)["estimates"]
            assert after == before
        finally:
            client.close()

    def test_owner_pid_recorded_at_connect(self, server):
        with EstimationClient(server.host, server.port) as client:
            assert client._owner_pid is None
            client.ping()
            assert client._owner_pid == os.getpid()


class TestWaitUntilReadyDeadline:
    def test_unreachable_port_honours_timeout(self):
        # Nothing listens: each probe fails fast (connection refused),
        # so the loop spins until the deadline and raises on time.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(ServerUnavailable):
            wait_until_ready("127.0.0.1", port, timeout=0.5)
        assert time.monotonic() - started < 2.0

    def test_slow_accepting_host_cannot_overshoot(self):
        """Probes against a full accept queue are clamped to the deadline.

        A listener with an exhausted backlog never answers the ping, so
        each probe blocks until *its* socket timeout.  The regression
        hardcoded 5 s per probe, making ``timeout=1.0`` block ~5 s; the
        clamp keeps the total within the stated deadline.
        """
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(0)
        address = listener.getsockname()
        fillers = []
        try:
            # Saturate the accept queue; once full, further connects
            # hang in SYN retry (or connect but never get answered).
            for _ in range(8):
                filler = socket.socket()
                filler.settimeout(0.25)
                try:
                    filler.connect(address)
                except OSError:
                    pass
                fillers.append(filler)
            started = time.monotonic()
            with pytest.raises(ServerUnavailable):
                wait_until_ready(address[0], address[1], timeout=1.0)
            elapsed = time.monotonic() - started
            assert elapsed < 3.0, (
                f"wait_until_ready(timeout=1.0) blocked {elapsed:.1f}s — "
                "per-probe timeout is not clamped to the deadline"
            )
        finally:
            for filler in fillers:
                filler.close()
            listener.close()
