"""Tests for hash partitioning and the bound-sketch optimization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import BoundSketchPartitioner, buckets_per_attribute, hash_bucket
from repro.core import (
    join_attributes,
    molp_sketch_bound,
    optimistic_sketch_estimate,
    sketch_attributes,
)
from repro.core.ceg_m import molp_min_path
from repro.catalog.degrees import DegreeCatalog
from repro.engine import count_pattern
from repro.graph import generate_graph
from repro.query import templates


class TestHashBucket:
    def test_deterministic(self):
        values = np.arange(100)
        a = hash_bucket(values, 4)
        b = hash_bucket(values, 4)
        assert (a == b).all()

    def test_range(self):
        values = np.arange(1000)
        buckets = hash_bucket(values, 7)
        assert buckets.min() >= 0 and buckets.max() < 7

    def test_spread(self):
        values = np.arange(1000)
        counts = np.bincount(hash_bucket(values, 4), minlength=4)
        assert counts.min() > 100  # roughly uniform

    def test_buckets_per_attribute(self):
        assert buckets_per_attribute(16, 2) == 4
        assert buckets_per_attribute(4, 1) == 4
        assert buckets_per_attribute(1, 3) == 1
        assert buckets_per_attribute(8, 0) == 1


class TestPartitioner:
    def test_partitions_cover_relation(self, medium_random_graph):
        """Union of partition edge sets equals the original relation."""
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(2).with_labels(labels[:2])
        partitioner = BoundSketchPartitioner(graph, budget=4)
        attrs = frozenset({query.variables[1]})
        total = {f"{label}#{i}": 0 for i, label in enumerate(query.labels)}
        for subgraph, subquery in partitioner.subqueries(query, attrs):
            for name in total:
                total[name] += subgraph.cardinality(name)
        assert total[f"{labels[0]}#0"] == graph.cardinality(labels[0])
        assert total[f"{labels[1]}#1"] == graph.cardinality(labels[1])

    def test_counts_partition_exactly(self, medium_random_graph):
        """Per-partition true counts sum to the original true count."""
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(2).with_labels(labels[:2])
        truth = count_pattern(graph, query)
        partitioner = BoundSketchPartitioner(graph, budget=4)
        attrs = frozenset({query.variables[1]})  # the join attribute
        parts = 0.0
        for subgraph, subquery in partitioner.subqueries(graph and query, attrs):
            parts += count_pattern(subgraph, subquery)
        assert parts == pytest.approx(truth)

    def test_budget_one_returns_single(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(2).with_labels(labels[:2])
        partitioner = BoundSketchPartitioner(graph, budget=1)
        subproblems = partitioner.subqueries(query, frozenset({"v1"}))
        assert len(subproblems) == 1

    def test_invalid_budget(self, medium_random_graph):
        with pytest.raises(ValueError):
            BoundSketchPartitioner(medium_random_graph, budget=0)


class TestSketchAttributes:
    def test_join_attributes(self):
        query = templates.fork(2, 3)
        assert join_attributes(query) == frozenset({"v1", "v2"})

    def test_sketch_attrs_exclude_bound_extensions(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(3).with_labels(labels[:3])
        catalog = DegreeCatalog(graph, h=1)
        _, path = molp_min_path(query, catalog)
        attrs = sketch_attributes(query, path)
        assert attrs <= join_attributes(query)


class TestSketchBounds:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_molp_sketch_still_upper_bound(self, seed):
        graph = generate_graph(40, 150, 3, seed=seed, closure=0.3)
        labels = list(graph.labels)
        query = templates.path(3).with_labels(
            [labels[i % len(labels)] for i in range(3)]
        )
        truth = count_pattern(graph, query)
        for budget in (1, 4, 16):
            bound = molp_sketch_bound(graph, query, budget, h=1)
            assert bound >= truth - 1e-6, (budget, bound, truth)

    def test_molp_sketch_never_worse(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.fork(1, 2).with_labels(labels[:3])
        direct = molp_sketch_bound(graph, query, budget=1, h=1)
        sketched = molp_sketch_bound(graph, query, budget=16, h=1)
        assert sketched <= direct + 1e-9

    def test_optimistic_sketch_runs(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(3).with_labels(labels[:3])
        plain = optimistic_sketch_estimate(graph, query, budget=1, h=2)
        sketched = optimistic_sketch_estimate(graph, query, budget=4, h=2)
        assert plain >= 0 and sketched >= 0

    def test_optimistic_sketch_exact_when_h_covers(self, medium_random_graph):
        """With h >= |Q| each partition estimate is exact, so the sum is
        exactly the true cardinality — partitioning is lossless."""
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(2).with_labels(labels[:2])
        truth = count_pattern(graph, query)
        total = optimistic_sketch_estimate(graph, query, budget=4, h=2)
        assert total == pytest.approx(truth)
