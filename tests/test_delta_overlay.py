"""MutableGraphOverlay: set semantics, layered reads, materialization."""

from __future__ import annotations

import pytest

from repro.delta import (
    DELETE,
    INSERT,
    EdgeUpdate,
    MutableGraphOverlay,
    UpdateBatch,
    normalize_updates,
)
from repro.errors import DatasetError
from repro.stats.artifact import dataset_fingerprint


class TestSetSemantics:
    def test_insert_existing_edge_is_noop(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        assert not overlay.insert(0, 2, "A")
        assert overlay.pending == 0

    def test_delete_absent_edge_is_noop(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        assert not overlay.delete(7, 7, "A")
        assert not overlay.delete(0, 0, "ZZZ")
        assert overlay.pending == 0

    def test_insert_then_delete_cancels(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        assert overlay.insert(7, 0, "A")
        assert overlay.delete(7, 0, "A")
        assert overlay.pending == 0
        assert not overlay.has_edge(7, 0, "A")

    def test_delete_then_insert_restores_base_edge(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        assert overlay.delete(0, 2, "A")
        assert not overlay.has_edge(0, 2, "A")
        assert overlay.insert(0, 2, "A")
        assert overlay.pending == 0
        assert overlay.has_edge(0, 2, "A")

    def test_double_insert_once_effective(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        assert overlay.insert(7, 0, "A")
        assert not overlay.insert(7, 0, "A")
        assert overlay.pending == 1

    def test_invariants_hold(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        overlay.insert(7, 0, "A")
        overlay.delete(0, 2, "A")
        assert overlay.pending_inserts == {(7, 0, "A")}
        assert overlay.pending_deletes == {(0, 2, "A")}


class TestLayeredReads:
    def test_counts_track_edits(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        base_edges = tiny_graph.num_edges
        overlay.insert(7, 0, "A")
        overlay.delete(4, 6, "C")
        assert overlay.num_edges == base_edges
        assert overlay.cardinality("A") == tiny_graph.cardinality("A") + 1
        assert overlay.cardinality("C") == tiny_graph.cardinality("C") - 1
        assert overlay.touched_labels() == {"A", "C"}

    def test_vertex_universe_grows_with_inserts(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        overlay.insert(0, 20, "A")
        assert overlay.num_vertices == 21

    def test_degree_deltas(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        overlay.insert(7, 0, "A")
        overlay.delete(0, 2, "A")
        out_delta, in_delta = overlay.degree_deltas()["A"]
        assert out_delta[7] == 1 and out_delta[0] == -1
        assert in_delta[0] == 1 and in_delta[2] == -1


class TestMaterialize:
    def test_matches_from_scratch_construction(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        overlay.insert(7, 0, "A")
        overlay.delete(0, 2, "A")
        overlay.insert(1, 5, "D")  # brand-new label
        materialized = overlay.materialize()
        triples = set(tiny_graph.triples())
        triples.add((7, 0, "A"))
        triples.discard((0, 2, "A"))
        triples.add((1, 5, "D"))
        from repro.graph.digraph import LabeledDiGraph

        expected = LabeledDiGraph.from_triples(
            triples, num_vertices=tiny_graph.num_vertices
        )
        assert dataset_fingerprint(materialized) == dataset_fingerprint(
            expected
        )
        assert overlay.fingerprint() == dataset_fingerprint(expected)

    def test_label_vanishes_when_emptied(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        for src, dst, label in tiny_graph.triples():
            if label == "B":
                overlay.delete(src, dst, label)
        materialized = overlay.materialize()
        assert "B" not in materialized.labels
        assert materialized.num_edges == tiny_graph.num_edges - 3

    def test_base_untouched(self, tiny_graph):
        overlay = MutableGraphOverlay(tiny_graph)
        before = dataset_fingerprint(tiny_graph)
        overlay.delete(0, 2, "A")
        overlay.insert(5, 5, "C")
        overlay.materialize()
        assert dataset_fingerprint(tiny_graph) == before


class TestUpdateBatch:
    def test_rows_round_trip(self, tmp_path):
        batch = UpdateBatch(
            [["+", 0, 1, "A"], ["delete", 2, 3, "B"], ("insert", 4, 5, "C")]
        )
        assert [u.op for u in batch] == [INSERT, DELETE, INSERT]
        path = tmp_path / "ops.json"
        batch.save(path)
        again = UpdateBatch.load(path)
        assert again.to_rows() == batch.to_rows()

    def test_bad_rows_raise_friendly_errors(self):
        with pytest.raises(DatasetError):
            UpdateBatch([["?", 0, 1, "A"]])
        with pytest.raises(DatasetError):
            UpdateBatch([["+", 0, 1]])
        with pytest.raises(DatasetError):
            EdgeUpdate(INSERT, -1, 0, "A")

    def test_normalize_last_op_wins(self, tiny_graph):
        batch = UpdateBatch(
            [
                ["+", 7, 0, "A"],
                ["-", 7, 0, "A"],   # cancels the insert
                ["+", 0, 2, "A"],   # already present: no-op
                ["-", 2, 4, "B"],   # real delete
                ["-", 6, 6, "C"],   # absent: no-op
            ]
        )
        inserts, deletes = normalize_updates(tiny_graph, batch)
        assert inserts == set()
        assert deletes == {(2, 4, "B")}

    def test_inverted_mirrors_ops(self):
        batch = UpdateBatch([["+", 0, 1, "A"], ["-", 2, 3, "B"]])
        rows = batch.inverted().to_rows()
        assert rows == [["+", 2, 3, "B"], ["-", 0, 1, "A"]]
