"""Tests for bushy planning and the table-table join."""

import pytest

from repro.engine import count_pattern, start_table
from repro.engine.join import join_tables
from repro.errors import PlanningError
from repro.planner import (
    execute_bushy,
    execute_plan,
    optimize_bushy,
    optimize_left_deep,
    tree_atoms,
)
from repro.query import QueryEdge, parse_pattern, templates


class TestJoinTables:
    def test_shared_variable_join(self, tiny_graph):
        left = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        right = start_table(tiny_graph, QueryEdge("y", "z", "B"))
        joined = join_tables(left, right, tiny_graph.num_vertices)
        assert set(joined.variables) == {"x", "y", "z"}
        assert joined.size == 5

    def test_join_commutative_in_count(self, tiny_graph):
        left = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        right = start_table(tiny_graph, QueryEdge("y", "z", "B"))
        a = join_tables(left, right, tiny_graph.num_vertices)
        b = join_tables(right, left, tiny_graph.num_vertices)
        assert a.size == b.size

    def test_two_shared_variables(self, tiny_graph):
        left = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        right = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        joined = join_tables(left, right, tiny_graph.num_vertices)
        assert joined.size == left.size  # self-join on both columns

    def test_no_shared_variable_rejected(self, tiny_graph):
        left = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        right = start_table(tiny_graph, QueryEdge("p", "q", "B"))
        with pytest.raises(PlanningError):
            join_tables(left, right, tiny_graph.num_vertices)

    def test_empty_side(self, tiny_graph):
        left = start_table(tiny_graph, QueryEdge("x", "y", "Z"))
        right = start_table(tiny_graph, QueryEdge("y", "z", "B"))
        joined = join_tables(left, right, tiny_graph.num_vertices)
        assert joined.size == 0
        assert set(joined.variables) == {"x", "y", "z"}

    def test_max_rows(self, tiny_graph):
        left = start_table(tiny_graph, QueryEdge("x", "y", "B"))
        right = start_table(tiny_graph, QueryEdge("x", "z", "B"))
        with pytest.raises(PlanningError):
            join_tables(left, right, tiny_graph.num_vertices, max_rows=1)


class TestOptimizeBushy:
    def test_tree_covers_atoms(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        plan = optimize_bushy(query, lambda p: float(len(p)))
        assert tree_atoms(plan.tree) == frozenset(range(3))

    def test_never_worse_than_left_deep(self, medium_random_graph):
        """Left-deep plans are bushy plans: optimal bushy est-cost <=
        optimal left-deep est-cost under the same estimates."""
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.fork(2, 2).with_labels(labels[:4])

        def exact(pattern):
            return count_pattern(graph, pattern)

        left_deep = optimize_left_deep(query, exact)
        bushy = optimize_bushy(query, exact)
        assert bushy.estimated_cost <= left_deep.estimated_cost + 1e-6

    def test_atom_cap(self):
        big = templates.path(13)
        with pytest.raises(PlanningError):
            optimize_bushy(big, lambda p: 1.0)

    def test_single_atom(self, tiny_graph):
        plan = optimize_bushy(parse_pattern("x -[A]-> y"), lambda p: 1.0)
        assert plan.tree == 0


class TestExecuteBushy:
    def test_final_count_matches(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.fork(1, 2).with_labels(labels[:3])
        truth = count_pattern(graph, query)
        plan = optimize_bushy(query, lambda p: count_pattern(graph, p))
        result = execute_bushy(graph, query, plan.tree)
        assert result.final_cardinality == pytest.approx(truth)

    def test_agrees_with_left_deep_execution(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.path(3).with_labels(labels[:3])
        bushy_run = execute_bushy(graph, query, ((0, 1), 2))
        left_run = execute_plan(graph, query, [0, 1, 2])
        assert bushy_run.final_cardinality == pytest.approx(
            left_run.final_cardinality
        )

    def test_incomplete_tree_rejected(self, tiny_graph):
        query = parse_pattern("a -[A]-> b -[B]-> c")
        with pytest.raises(PlanningError):
            execute_bushy(tiny_graph, query, 0)

    def test_abort_on_blowup(self, medium_random_graph):
        graph = medium_random_graph
        labels = list(graph.labels)
        query = templates.star(3).with_labels(
            [labels[0], labels[0], labels[1]]
        )
        result = execute_bushy(graph, query, ((0, 1), 2), max_rows=5)
        assert result.aborted

    def test_cyclic_query_execution(self, small_random_graph):
        from repro.engine import PatternSampler

        sampler = PatternSampler(small_random_graph, seed=17)
        instance = sampler.sample_instance(templates.triangle(), max_tries=300)
        if instance is None:
            pytest.skip("no triangle instance")
        truth = count_pattern(small_random_graph, instance)
        result = execute_bushy(small_random_graph, instance, ((0, 1), 2))
        assert result.final_cardinality == pytest.approx(truth)
