"""The ``repro updates`` CLI verbs and the ``repro query`` delta/deadline
satellites: apply/replay/compact end to end, ``--apply-deltas`` live
refresh over a real socket, and ``--timeout`` mapping onto the
per-request deadline with the exit-3 contract.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.server import StoreRegistry, ThreadedServer
from repro.stats import StatisticsStore

UPDATE_ROWS = [["+", 0, 5, "B"], ["-", 3, 5, "B"], ["+", 12, 0, "A"]]


def run_cli(capsys, *argv):
    capsys.readouterr()  # drain output of fixture-run commands
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def artifact_dir(tmp_path):
    directory = tmp_path / "example"
    assert main(
        ["stats", "build", "--dataset", "example", "--out", str(directory)]
    ) == 0
    return directory


@pytest.fixture()
def updates_file(tmp_path):
    path = tmp_path / "ops.json"
    path.write_text(json.dumps({"updates": UPDATE_ROWS}))
    return path


class TestUpdatesApply:
    def test_apply_writes_delta_and_reports(
        self, capsys, artifact_dir, updates_file
    ):
        code, out, _ = run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(updates_file),
        )
        assert code == 0
        report = json.loads(out)
        assert report["mode"] == "incremental"
        assert report["generation"] == 1
        assert report["inserts"] == 2 and report["deletes"] == 1
        assert report["ledger"]["markov"] == "exact"
        assert (artifact_dir / "deltas" / "0001.json").is_file()
        loaded = StatisticsStore.load(artifact_dir)
        assert loaded.manifest.generation == 1

    def test_apply_twice_chains_generations(
        self, capsys, artifact_dir, updates_file, tmp_path
    ):
        run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(updates_file),
        )
        second = tmp_path / "ops2.json"
        second.write_text(json.dumps({"updates": [["+", 1, 6, "B"]]}))
        code, out, _ = run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(second),
        )
        assert code == 0
        assert json.loads(out)["generation"] == 2

    def test_missing_updates_file_exits_2(self, capsys, artifact_dir):
        code, _, err = run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(artifact_dir / "nope.json"),
        )
        assert code == 2
        assert "cannot read update file" in err

    def test_missing_artifact_exits_2(self, capsys, tmp_path, updates_file):
        code, _, err = run_cli(
            capsys, "updates", "apply", "--stats-dir", str(tmp_path / "no"),
            "--updates", str(updates_file),
        )
        assert code == 2
        assert "manifest" in err

    def test_unknown_subcommand_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "updates", "frobnicate")
        assert code == 2
        assert "apply | replay | compact" in err


class TestUpdatesReplayAndCompact:
    def test_replay_verifies_lineage_and_catalogs(
        self, capsys, artifact_dir, updates_file
    ):
        run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(updates_file),
        )
        code, out, _ = run_cli(
            capsys, "updates", "replay", "--stats-dir", str(artifact_dir),
            "--verify",
        )
        assert code == 0
        report = json.loads(out)
        assert report["generation"] == 1
        assert [d["generation"] for d in report["deltas"]] == [1]
        assert report["verified"] == {
            "markov": True,
            "degrees": True,
            "characteristic_sets": True,
        }
        assert report["skipped"] == ["sumrdf"]

    def test_replay_detects_tampered_log(
        self, capsys, artifact_dir, updates_file
    ):
        run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(updates_file),
        )
        delta_path = artifact_dir / "deltas" / "0001.json"
        payload = json.loads(delta_path.read_text())
        payload["updates"].append(["+", 2, 6, "B"])
        delta_path.write_text(json.dumps(payload))
        code, _, err = run_cli(
            capsys, "updates", "replay", "--stats-dir", str(artifact_dir)
        )
        assert code == 2
        assert "fingerprint" in err

    def test_compact_folds_chain(self, capsys, artifact_dir, updates_file):
        run_cli(
            capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
            "--updates", str(updates_file),
        )
        code, out, _ = run_cli(
            capsys, "updates", "compact", str(artifact_dir)
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["folded_generations"] == 1
        # Replay still works (logs are retained for audit) and the
        # compacted artifact still verifies against a cold rebuild.
        code, out, _ = run_cli(
            capsys, "updates", "replay", "--stats-dir", str(artifact_dir),
            "--verify",
        )
        assert code == 0
        assert all(json.loads(out)["verified"].values())


class TestQueryDeltaVerb:
    def test_apply_deltas_flag_refreshes_live_tenant(
        self, capsys, artifact_dir, updates_file
    ):
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        with ThreadedServer(registry) as server:
            port = str(server.port)
            code, out, _ = run_cli(
                capsys, "query", "--port", port, "--tenant", "example",
                "--apply-deltas",
            )
            assert code == 0
            assert json.loads(out)["applied"] == 0
            run_cli(
                capsys, "updates", "apply", "--stats-dir", str(artifact_dir),
                "--updates", str(updates_file),
            )
            code, out, _ = run_cli(
                capsys, "query", "--port", port, "--tenant", "example",
                "--apply-deltas",
            )
            assert code == 0
            result = json.loads(out)
            assert result["applied"] == 1
            assert result["artifact_generation"] == 1

    def test_apply_deltas_needs_tenant(self, capsys):
        code, _, err = run_cli(capsys, "query", "--apply-deltas")
        assert code == 2
        assert "--apply-deltas needs --tenant" in err

    def test_apply_deltas_is_exclusive_mode(self, capsys):
        code, _, err = run_cli(
            capsys, "query", "--apply-deltas", "--stats",
        )
        assert code == 2
        assert "exactly one" in err


class TestQueryTimeout:
    def test_timeout_maps_to_deadline_exit_3(
        self, capsys, artifact_dir, monkeypatch
    ):
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        entry = registry.get("example")
        original = entry.session.estimate_one

        def slow(pattern, spec):
            time.sleep(1.0)
            return original(pattern, spec)

        monkeypatch.setattr(entry.session, "estimate_one", slow)
        with ThreadedServer(registry) as server:
            code, _, err = run_cli(
                capsys, "query", "--port", str(server.port),
                "--tenant", "example", "-q", "a -[A]-> b",
                "--timeout", "0.05",
            )
        assert code == 3
        assert "deadline_exceeded" in err

    def test_explicit_deadline_overrides_timeout(
        self, capsys, artifact_dir, monkeypatch
    ):
        registry = StoreRegistry()
        registry.load("example", artifact_dir)
        with ThreadedServer(registry) as server:
            code, out, _ = run_cli(
                capsys, "query", "--port", str(server.port),
                "--tenant", "example", "-q", "a -[A]-> b",
                "--timeout", "0.0001", "--deadline-ms", "30000",
            )
        # A generous explicit deadline wins over the tiny --timeout.
        assert code == 0
        [result] = json.loads(out)["results"]
        assert result["estimates"]

    def test_nonpositive_timeout_exits_2(self, capsys):
        code, _, err = run_cli(
            capsys, "query", "--tenant", "example", "-q", "a -[A]-> b",
            "--timeout", "0",
        )
        assert code == 2
        assert "--timeout must be positive" in err

    def test_unreachable_server_exits_3(self, capsys):
        code, _, err = run_cli(
            capsys, "query", "--port", "1", "--tenant", "example",
            "-q", "a -[A]-> b", "--timeout", "2",
        )
        assert code == 3
        assert "cannot connect" in err
