"""The ``repro batch`` CLI: exit codes, JSON schema, error paths.

Exit-code contract: 0 — every estimate succeeded; 1 — at least one query
failed to estimate (the error is reported per query, via the
:mod:`repro.errors` hierarchy); 2 — the request itself is invalid
(malformed query text, unknown estimator, no queries).
"""

import json

import pytest

from repro.cli import main

FAST = ["--dataset", "hetionet", "--scale", "0.02"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def run_batch_json(capsys, *argv):
    code, out, err = run_cli(capsys, "batch", *FAST, *argv)
    report = json.loads(out) if out else None
    return code, report, err


class TestHappyPath:
    def test_single_query_single_estimator(self, capsys):
        code, report, _ = run_batch_json(
            capsys, "-q", "a -[L0]-> b -[L1]-> c"
        )
        assert code == 0
        assert report["dataset"] == "hetionet"
        assert report["estimators"] == ["max-hop-max"]
        assert report["num_queries"] == 1
        [result] = report["results"]
        assert result["index"] == 0
        assert result["query"] == "a -[L0]-> b -[L1]-> c"
        assert isinstance(result["estimates"]["max-hop-max"], float)
        assert result["errors"] == {}
        assert set(report["cache"]) == {"skeletons", "estimates"}
        for counters in report["cache"].values():
            assert {"hits", "misses", "evictions", "size", "capacity",
                    "hit_rate"} <= set(counters)
        assert report["elapsed_seconds"] > 0

    def test_multiple_estimators_and_all9(self, capsys):
        code, report, _ = run_batch_json(
            capsys, "-q", "a -[L0]-> b", "-e", "all9", "-e", "MOLP"
        )
        assert code == 0
        assert len(report["estimators"]) == 10  # nine heuristics + MOLP
        assert "MOLP" in report["estimators"]
        [result] = report["results"]
        assert set(result["estimates"]) == set(report["estimators"])

    def test_repeat_exercises_cache(self, capsys):
        code, report, _ = run_batch_json(
            capsys, "-q", "a -[L0]-> b -[L1]-> c", "--repeat", "3"
        )
        assert code == 0
        assert report["repeat"] == 3
        assert report["cache"]["estimates"]["hits"] >= 2

    def test_queries_from_file(self, capsys, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# two chains\n"
            "a -[L0]-> b -[L1]-> c\n"
            "\n"
            "x -[L0]-> y -[L1]-> z\n",
            encoding="utf-8",
        )
        code, report, _ = run_batch_json(capsys, "--file", str(queries))
        assert code == 0
        assert report["num_queries"] == 2
        # The second query is a renaming of the first: same estimate,
        # shared cache entry.
        first, second = report["results"]
        assert first["estimates"] == second["estimates"]
        assert report["cache"]["skeletons"]["size"] == 1


class TestEstimationFailures:
    def test_disconnected_query_reports_error_and_exit_1(self, capsys):
        code, report, _ = run_batch_json(
            capsys,
            "-q", "a -[L0]-> b, c -[L1]-> d",
            "-q", "a -[L0]-> b",
        )
        assert code == 1
        bad, good = report["results"]
        assert bad["estimates"] == {}
        assert "EstimationError" in bad["errors"]["max-hop-max"]
        assert good["errors"] == {}
        assert isinstance(good["estimates"]["max-hop-max"], float)


class TestInvalidRequests:
    def test_malformed_query_exits_2(self, capsys):
        code, out, err = run_cli(capsys, "batch", *FAST, "-q", "a -[L0")
        assert code == 2
        assert out == ""
        assert "malformed query" in err

    def test_unknown_estimator_exits_2(self, capsys):
        code, out, err = run_cli(
            capsys, "batch", *FAST, "-q", "a -[L0]-> b", "-e", "bogus"
        )
        assert code == 2
        assert "bogus" in err

    def test_no_queries_exits_2(self, capsys):
        code, out, err = run_cli(capsys, "batch", *FAST)
        assert code == 2
        assert "no queries" in err

    def test_missing_query_file_exits_2(self, capsys, tmp_path):
        code, out, err = run_cli(
            capsys, "batch", *FAST, "--file", str(tmp_path / "absent.txt")
        )
        assert code == 2
        assert out == ""
        assert "cannot read query file" in err

    def test_ocr_spec_without_cycle_rates_exits_2(self, capsys):
        code, out, err = run_cli(
            capsys, "batch", *FAST, "-q", "a -[L0]-> b",
            "-e", "max-hop-max+ocr",
        )
        assert code == 2
        assert "--cycle-rates" in err

    def test_unknown_dataset_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "--dataset", "nope", "-q", "a -[L0]-> b"])
        assert excinfo.value.code == 2


class TestLegacyCli:
    def test_list_still_works(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "table2" in out and "fig9" in out
