"""Direct unit tests for the vectorised binding-table join engine."""

import numpy as np
import pytest

from repro.engine import extend_by_edge, start_table
from repro.engine.join import expand_ranges
from repro.errors import PlanningError
from repro.query import QueryEdge


class TestExpandRanges:
    def test_simple(self):
        lo = np.asarray([0, 2, 5])
        hi = np.asarray([2, 2, 7])
        rows, flat = expand_ranges(lo, hi)
        assert list(rows) == [0, 0, 2, 2]
        assert list(flat) == [0, 1, 5, 6]

    def test_all_empty(self):
        lo = np.asarray([3, 4])
        hi = np.asarray([3, 4])
        rows, flat = expand_ranges(lo, hi)
        assert rows.size == 0 and flat.size == 0

    def test_single_long_range(self):
        rows, flat = expand_ranges(np.asarray([10]), np.asarray([14]))
        assert list(rows) == [0, 0, 0, 0]
        assert list(flat) == [10, 11, 12, 13]


class TestStartTable:
    def test_regular_atom(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        assert table.variables == ("x", "y")
        assert table.size == 3

    def test_missing_label(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "Z"))
        assert table.size == 0

    def test_self_loop_atom(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "x", "A"))
        assert table.variables == ("x",)
        assert table.size == 0  # tiny graph has no A self-loops


class TestExtend:
    def test_forward_extension(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        table = extend_by_edge(tiny_graph, table, QueryEdge("y", "z", "B"))
        assert table.variables == ("x", "y", "z")
        assert table.size == 5

    def test_backward_extension(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("y", "z", "B"))
        table = extend_by_edge(tiny_graph, table, QueryEdge("x", "y", "A"))
        assert set(table.variables) == {"x", "y", "z"}
        assert table.size == 5

    def test_both_bound_filters(self, tiny_graph):
        # x -A-> y plus a second atom between the same variables with a
        # different label acts as a semi-join filter.
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        filtered = extend_by_edge(tiny_graph, table, QueryEdge("x", "y", "B"))
        assert filtered.variables == ("x", "y")
        assert filtered.size == 0  # no pair has both an A and a B edge

    def test_disconnected_atom_rejected(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        with pytest.raises(PlanningError):
            extend_by_edge(tiny_graph, table, QueryEdge("p", "q", "B"))

    def test_max_rows_enforced(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        with pytest.raises(PlanningError):
            extend_by_edge(
                tiny_graph, table, QueryEdge("y", "z", "B"), max_rows=2
            )

    def test_missing_label_extension_empty(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        extended = extend_by_edge(tiny_graph, table, QueryEdge("y", "z", "Z"))
        assert extended.size == 0
        assert extended.variables == ("x", "y", "z")

    def test_rows_are_genuine_matches(self, tiny_graph):
        table = start_table(tiny_graph, QueryEdge("x", "y", "A"))
        table = extend_by_edge(tiny_graph, table, QueryEdge("y", "z", "B"))
        a = tiny_graph.relation("A")
        b = tiny_graph.relation("B")
        for row in table.rows:
            x, y, z = (int(v) for v in row)
            assert a.has_edge(x, y, tiny_graph.num_vertices)
            assert b.has_edge(y, z, tiny_graph.num_vertices)
