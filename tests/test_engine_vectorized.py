"""Differential tests: vectorized frame counter == legacy backtracker.

The vectorized match-frame counter (``impl="vectorized"``, the default)
must be observationally identical to the per-candidate Python
backtracker it replaced (kept behind ``impl="python"``): exact float
equality of every count on random graphs × random cyclic patterns,
including hanging trees, self-loops, parallel atoms and disconnected
components, plus budget-exhaustion parity (both impls raise
``CountBudgetExceeded`` at compatible thresholds).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    count_core_frames,
    count_pattern,
    plan_core_edges,
    two_core_edges,
)
from repro.errors import CountBudgetExceeded
from repro.graph import LabeledDiGraph
from repro.query import QueryPattern, templates


@st.composite
def graph_and_cyclic_pattern(draw):
    """A small random graph and a pattern with a non-empty 2-core."""
    n = draw(st.integers(min_value=2, max_value=6))
    labels = ["A", "B", "C"]
    num_edges = draw(st.integers(min_value=2, max_value=14))
    triples = set()
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        triples.add((u, v, draw(st.sampled_from(labels))))
    graph = LabeledDiGraph.from_triples(sorted(triples), num_vertices=n)

    shape = draw(
        st.sampled_from(
            [
                "triangle",
                "cycle4",
                "cycle5",
                "lollipop",
                "tailed_cycle4",
                "parallel",
                "self_loop",
                "loop_tail",
                "two_triangles",
                "k4_minus",
            ]
        )
    )
    if shape == "triangle":
        base = templates.triangle()
    elif shape == "cycle4":
        base = templates.cycle(4)
    elif shape == "cycle5":
        base = templates.cycle(5)
    elif shape == "lollipop":
        base = QueryPattern(
            [("a", "b", "?"), ("b", "c", "?"), ("c", "a", "?"), ("a", "t", "?")]
        )
    elif shape == "tailed_cycle4":
        base = QueryPattern(
            [
                ("a", "b", "?"), ("b", "c", "?"), ("c", "d", "?"),
                ("d", "a", "?"), ("b", "t", "?"), ("t", "u", "?"),
            ]
        )
    elif shape == "parallel":
        # Two atoms over the same variable pair: a 2-cycle core.
        base = QueryPattern([("a", "b", "?"), ("a", "b", "!"), ("b", "t", "?")])
    elif shape == "self_loop":
        base = QueryPattern([("a", "a", "?")])
    elif shape == "loop_tail":
        base = QueryPattern([("a", "a", "?"), ("a", "b", "?"), ("b", "c", "?")])
    elif shape == "two_triangles":
        # Disconnected: two cyclic components (counts multiply).
        base = QueryPattern(
            [
                ("a", "b", "?"), ("b", "c", "?"), ("c", "a", "?"),
                ("x", "y", "?"), ("y", "z", "?"), ("z", "x", "?"),
            ]
        )
    else:  # k4_minus: 4-cycle with one chord — two overlapping cycles
        base = QueryPattern(
            [
                ("a", "b", "?"), ("b", "c", "?"), ("c", "d", "?"),
                ("d", "a", "?"), ("a", "c", "?"),
            ]
        )
    chosen = [draw(st.sampled_from(labels)) for _ in range(len(base))]
    atoms = [
        (edge.src, edge.dst, label) for edge, label in zip(base, chosen)
    ]
    if len(set(atoms)) != len(atoms):
        # Label draw collapsed parallel atoms into duplicates; force them
        # apart (QueryPattern forbids duplicate atoms).
        chosen = [labels[i % len(labels)] for i in range(len(base))]
    return graph, base.with_labels(chosen)


class TestDifferential:
    @given(graph_and_cyclic_pattern())
    @settings(max_examples=120, deadline=None)
    def test_vectorized_equals_python(self, case):
        graph, pattern = case
        legacy = count_pattern(graph, pattern, impl="python")
        vectorized = count_pattern(graph, pattern, impl="vectorized")
        assert vectorized == legacy  # exact float equality, no approx

    @given(graph_and_cyclic_pattern())
    @settings(max_examples=60, deadline=None)
    def test_default_impl_is_vectorized(self, case):
        graph, pattern = case
        assert count_pattern(graph, pattern) == count_pattern(
            graph, pattern, impl="vectorized"
        )

    @given(graph_and_cyclic_pattern())
    @settings(max_examples=60, deadline=None)
    def test_budget_parity(self, case):
        """Both impls raise on tiny budgets and agree under generous ones.

        The budgets are *compatible*, not identical: the backtracker
        charges ``candidates + 1`` per expansion step, the frame counter
        one unit per materialized row.  Whenever the pattern has any
        matching work to do, budget 1 exhausts the backtracker and
        budget 0 exhausts the frame counter (a frame with matches always
        materializes at least one row); a generous budget exhausts
        neither and both return the same count.
        """
        graph, pattern = case
        if not two_core_edges(pattern):
            return
        generous = 10_000_000
        legacy = count_pattern(graph, pattern, budget=generous, impl="python")
        vectorized = count_pattern(
            graph, pattern, budget=generous, impl="vectorized"
        )
        assert vectorized == legacy
        if legacy > 0.0:
            with pytest.raises(CountBudgetExceeded):
                count_pattern(graph, pattern, budget=1, impl="python")
            with pytest.raises(CountBudgetExceeded):
                count_pattern(graph, pattern, budget=0, impl="vectorized")

    def test_bad_impl_rejected(self, tiny_graph):
        pattern = templates.triangle().with_labels(["A", "A", "A"])
        with pytest.raises(ValueError):
            count_pattern(tiny_graph, pattern, impl="numba")


class TestFrameCounterDirect:
    """Unit coverage of the frame kernel's counting entry points."""

    def test_plan_is_connected_permutation(self, tiny_graph):
        pattern = QueryPattern(
            [("a", "b", "A"), ("b", "c", "B"), ("c", "a", "C"), ("a", "c", "B")]
        )
        order = plan_core_edges(tiny_graph, pattern)
        assert sorted(order) == [0, 1, 2, 3]
        bound = set(pattern.edges[order[0]].variables())
        for index in order[1:]:
            edge = pattern.edges[index]
            assert edge.src in bound or edge.dst in bound
            bound.update(edge.variables())

    def test_core_count_with_weights(self, tiny_graph):
        # Lollipop: triangle core with a weighted tail at `a`; the frame
        # counter must fold the tree weight per binding of `a`.
        pattern = QueryPattern(
            [("a", "b", "A"), ("b", "c", "B"), ("c", "a", "C"), ("a", "t", "A")]
        )
        legacy = count_pattern(tiny_graph, pattern, impl="python")
        vectorized = count_pattern(tiny_graph, pattern, impl="vectorized")
        assert vectorized == legacy

    def test_missing_label_core_counts_zero(self, tiny_graph):
        pattern = templates.triangle().with_labels(["Z", "Z", "Z"])
        core = two_core_edges(pattern)
        assert core
        assert count_core_frames(tiny_graph, pattern, {}) == 0.0

    def test_budget_counts_materialized_rows(self, tiny_graph):
        pattern = QueryPattern([("x", "y", "A"), ("y", "x", "B")])
        # The A relation has 3 tuples, so even the starting frame
        # overflows a budget of 2.
        with pytest.raises(CountBudgetExceeded):
            count_core_frames(tiny_graph, pattern, {}, budget=2)

    def test_self_loop_only_core(self):
        graph = LabeledDiGraph.from_triples(
            [(0, 0, "L"), (1, 1, "L"), (1, 2, "L")], num_vertices=3
        )
        pattern = QueryPattern([("a", "a", "L")])
        assert count_pattern(graph, pattern, impl="vectorized") == 2.0
        assert count_pattern(graph, pattern, impl="python") == 2.0


class TestTwoCoreWorklist:
    """The worklist peeling must match a literal fixpoint reference."""

    @staticmethod
    def _reference(pattern: QueryPattern) -> frozenset[int]:
        remaining = set(range(len(pattern)))
        degree = {var: 0 for var in pattern.variables}
        for edge in pattern.edges:
            if edge.src == edge.dst:
                degree[edge.src] += 2
            else:
                degree[edge.src] += 1
                degree[edge.dst] += 1
        changed = True
        while changed:
            changed = False
            for index in sorted(remaining):
                edge = pattern.edges[index]
                if edge.src == edge.dst:
                    continue
                if degree[edge.src] == 1 or degree[edge.dst] == 1:
                    remaining.discard(index)
                    degree[edge.src] -= 1
                    degree[edge.dst] -= 1
                    changed = True
        return frozenset(remaining)

    @given(graph_and_cyclic_pattern())
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, case):
        _, pattern = case
        assert two_core_edges(pattern) == self._reference(pattern)

    def test_long_path_is_linear_friendly(self):
        # A 60-edge path peels to nothing; the worklist makes this O(E).
        pattern = templates.path(60)
        assert two_core_edges(pattern) == frozenset()

    def test_barbell(self):
        # Two triangles joined by a 3-edge bridge: the bridge is part of
        # the 2-core (no degree-1 endpoint ever appears on it).
        pattern = QueryPattern(
            [
                ("a", "b", "A"), ("b", "c", "A"), ("c", "a", "A"),
                ("a", "p", "B"), ("p", "q", "B"), ("q", "x", "B"),
                ("x", "y", "A"), ("y", "z", "A"), ("z", "x", "A"),
            ]
        )
        assert two_core_edges(pattern) == frozenset(range(9))

    def test_weight_alignment_through_semijoin(self):
        """Weights must be realigned when a closing edge filters rows."""
        triples = []
        for u, v in [(0, 1), (1, 2), (2, 0), (0, 2), (3, 4)]:
            triples.append((u, v, "E"))
        for u, v in [(0, 5), (0, 6), (2, 5)]:
            triples.append((u, v, "T"))
        graph = LabeledDiGraph.from_triples(triples, num_vertices=7)
        pattern = QueryPattern(
            [("a", "b", "E"), ("b", "c", "E"), ("c", "a", "E"), ("a", "t", "T")]
        )
        legacy = count_pattern(graph, pattern, impl="python")
        assert count_pattern(graph, pattern, impl="vectorized") == legacy
        assert legacy > 0.0


@st.composite
def acyclic_graph_pattern(draw):
    """Random graphs with acyclic patterns: impl must not matter at all."""
    n = draw(st.integers(min_value=2, max_value=5))
    triples = set()
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        triples.add((u, v, draw(st.sampled_from(["A", "B"]))))
    graph = LabeledDiGraph.from_triples(sorted(triples), num_vertices=n)
    base = draw(st.sampled_from([templates.path(3), templates.star(3)]))
    labels = [draw(st.sampled_from(["A", "B"])) for _ in range(len(base))]
    return graph, base.with_labels(labels)


class TestAcyclicUnaffected:
    @given(acyclic_graph_pattern())
    @settings(max_examples=40, deadline=None)
    def test_impl_choice_is_inert(self, case):
        graph, pattern = case
        assert count_pattern(graph, pattern, impl="python") == count_pattern(
            graph, pattern, impl="vectorized"
        )


def test_frame_weights_are_float64(tiny_graph):
    """Tree weights enter the frame as float64 — no silent downcast."""
    pattern = QueryPattern(
        [("a", "b", "A"), ("b", "c", "B"), ("c", "a", "C"), ("a", "t", "A")]
    )
    core = two_core_edges(pattern)
    assert core == frozenset({0, 1, 2})
    from repro.engine import tree_weight_array

    tree = pattern.subpattern([3])
    weights = tree_weight_array(tiny_graph, tree, "a")
    assert weights.dtype == np.float64
