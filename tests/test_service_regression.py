"""Golden regression: estimates on the running example are frozen.

Snapshots all nine §4.2 estimators (at Markov sizes h=2 and h=3) plus
the MOLP bound (at join-statistics sizes h=1 and h=2) for the paper's
running-example fork query Q5f on the Figure-2-shaped graph.  The
comparisons are exact (``==`` on floats): every operation on this path
is deterministic IEEE arithmetic, so any deviation means a refactor
changed an estimate — which must be a conscious decision, not silent
drift.  If a change is intentional, regenerate the constants with the
estimators themselves and say so in the commit.

The same values are asserted through the cached service path, pinning
the cached and fresh pipelines to each other *and* to history.
"""

import pytest

from repro.catalog.markov import MarkovTable
from repro.core.estimators import MolpEstimator, all_nine_estimators
from repro.graph.digraph import LabeledDiGraph
from repro.query import templates
from repro.service import EstimationSession

GOLDEN_NINE = {
    2: {
        "max-hop-max": 36.0,
        "max-hop-min": 32.0,
        "max-hop-avg": 34.22222222222222,
        "min-hop-max": 36.0,
        "min-hop-min": 32.0,
        "min-hop-avg": 34.22222222222222,
        "all-hops-max": 36.0,
        "all-hops-min": 32.0,
        "all-hops-avg": 34.22222222222222,
    },
    3: {
        "max-hop-max": 36.0,
        "max-hop-min": 32.0,
        "max-hop-avg": 33.407407407407405,
        "min-hop-max": 36.0,
        "min-hop-min": 32.0,
        "min-hop-avg": 33.333333333333336,
        "all-hops-max": 36.0,
        "all-hops-min": 32.0,
        "all-hops-avg": 33.4,
    },
}

GOLDEN_MOLP = {1: 48.0, 2: 32.0}


@pytest.fixture(scope="module")
def running_graph() -> LabeledDiGraph:
    """A graph shaped like Figure 2: A->B chains into a C/D/E fork."""
    triples = []
    for u, v in [(0, 3), (1, 3), (2, 4), (0, 4)]:
        triples.append((u, v, "A"))
    for u, v in [(3, 5), (4, 5), (3, 6), (4, 6)]:
        triples.append((u, v, "B"))
    for u, v in [(5, 7), (5, 8), (6, 7)]:
        triples.append((u, v, "C"))
    for u, v in [(5, 9), (6, 9), (6, 10)]:
        triples.append((u, v, "D"))
    for u, v in [(5, 11), (6, 11), (5, 12), (6, 12)]:
        triples.append((u, v, "E"))
    return LabeledDiGraph.from_triples(triples, num_vertices=13)


@pytest.fixture(scope="module")
def q5f():
    return templates.fork(2, 3).with_labels(["A", "B", "C", "D", "E"])


@pytest.mark.parametrize("h", sorted(GOLDEN_NINE))
def test_all_nine_estimators_frozen(running_graph, q5f, h):
    markov = MarkovTable(running_graph, h=h)
    estimators = all_nine_estimators(markov)
    assert set(estimators) == set(GOLDEN_NINE[h])
    for name, expected in GOLDEN_NINE[h].items():
        assert estimators[name].estimate(q5f) == expected, name


@pytest.mark.parametrize("h", sorted(GOLDEN_MOLP))
def test_molp_bound_frozen(running_graph, q5f, h):
    assert MolpEstimator(running_graph, h=h).estimate(q5f) == GOLDEN_MOLP[h]


@pytest.mark.parametrize("h", sorted(GOLDEN_NINE))
def test_loaded_store_matches_golden(running_graph, q5f, h, tmp_path):
    """A bulk-built, saved, reloaded (graph-free) store serves the
    frozen values — persistence is pinned to history like the caches."""
    from repro.stats import StatisticsStore, StatsBuildConfig, build_statistics

    store = build_statistics(running_graph, StatsBuildConfig(h=h, molp_h=2))
    directory = tmp_path / "artifact"
    store.save(directory)
    loaded = StatisticsStore.load(directory)
    assert loaded.graph_free
    batch = loaded.session().estimate_batch(
        [q5f], specs=sorted(GOLDEN_NINE[h]) + ["MOLP"]
    )
    assert batch.ok
    for name in sorted(GOLDEN_NINE[h]):
        assert batch.item(0, name).estimate == GOLDEN_NINE[h][name], name
    assert batch.item(0, "MOLP").estimate == GOLDEN_MOLP[2]


@pytest.mark.parametrize("h", sorted(GOLDEN_NINE))
def test_service_batch_matches_golden(running_graph, q5f, h):
    """The cached batch path reproduces the frozen values exactly."""
    session = EstimationSession(running_graph, h=h, molp_h=2)
    specs = sorted(GOLDEN_NINE[h]) + ["MOLP"]
    batch = session.estimate_batch([q5f], specs=specs)
    assert batch.ok
    for name in sorted(GOLDEN_NINE[h]):
        assert batch.item(0, name).estimate == GOLDEN_NINE[h][name], name
    assert batch.item(0, "MOLP").estimate == GOLDEN_MOLP[2]
    # Serving the same batch again is pure cache hits with equal values.
    again = session.estimate_batch([q5f], specs=specs)
    assert [i.estimate for i in again.items] == [
        i.estimate for i in batch.items
    ]
