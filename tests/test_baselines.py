"""Tests for the baseline estimators (CS, SumRDF, WJ, RDF-3X default)."""

import pytest

from repro.baselines import (
    CharacteristicSetsEstimator,
    Rdf3xDefaultEstimator,
    SumRdfEstimator,
    WanderJoinEstimator,
)
from repro.engine import count_pattern
from repro.errors import CountBudgetExceeded
from repro.query import QueryPattern, parse_pattern, templates


class TestCharacteristicSets:
    def test_single_atom_exact(self, tiny_graph):
        cs = CharacteristicSetsEstimator(tiny_graph)
        estimate = cs.estimate(parse_pattern("x -[A]-> y"))
        assert estimate == pytest.approx(3.0)

    def test_out_star_uniformity_assumption(self, tiny_graph):
        """CS estimates stars with per-charset mean multiplicities.

        Vertices 2 and 3 share the charset {A-in, B-out} with 3 B-edges
        total, so the 2-star estimate is 2 * (3/2)^2 = 4.5 while the
        true count is 2^2 + 1^2 = 5 — the classic uniformity error.
        """
        cs = CharacteristicSetsEstimator(tiny_graph)
        star = QueryPattern([("x", "y", "B"), ("x", "z", "B")])
        truth = count_pattern(tiny_graph, star)
        assert truth == 5
        assert cs.estimate(star) == pytest.approx(4.5)

    def test_mixed_direction_star(self, tiny_graph):
        """An in-edge forces a second star: |B-star| * |A-star| / dom(x).

        3 * 3 / 7 subjects ≈ 1.29 against a true count of 5 — the
        uniform-domain join selectivity underestimates.
        """
        cs = CharacteristicSetsEstimator(tiny_graph)
        star = QueryPattern([("x", "y", "B"), ("w", "x", "A")])
        assert cs.num_subjects == 7
        assert cs.estimate(star) == pytest.approx(9.0 / 7.0)
        assert count_pattern(tiny_graph, star) == 5

    def test_path_decomposition_underestimates_on_skew(
        self, medium_random_graph
    ):
        """On a skewed graph the star-independence combination typically
        underestimates (the paper's §6.4 observation)."""
        graph = medium_random_graph
        cs = CharacteristicSetsEstimator(graph)
        labels = list(graph.labels)
        under = 0
        total = 0
        for offset in range(6):
            query = templates.path(3).with_labels(
                [labels[(offset + i) % len(labels)] for i in range(3)]
            )
            truth = count_pattern(graph, query)
            if truth == 0:
                continue
            total += 1
            if cs.estimate(query) < truth:
                under += 1
        assert total > 0
        assert under >= total / 2

    def test_num_characteristic_sets(self, tiny_graph):
        cs = CharacteristicSetsEstimator(tiny_graph)
        assert cs.num_characteristic_sets >= 3

    def test_unknown_label(self, tiny_graph):
        cs = CharacteristicSetsEstimator(tiny_graph)
        assert cs.estimate(parse_pattern("x -[Z]-> y")) == 0.0


class TestSumRdf:
    def test_single_atom_exact(self, tiny_graph):
        estimator = SumRdfEstimator(tiny_graph, num_buckets=16)
        assert estimator.estimate(parse_pattern("x -[A]-> y")) == pytest.approx(3.0)

    def test_exact_with_one_bucket_per_vertex(self, tiny_graph):
        """B >= |V| with injective bucketing would be exact; with the
        signature hash the summary still reproduces small graphs well."""
        estimator = SumRdfEstimator(tiny_graph, num_buckets=64)
        query = parse_pattern("x -[A]-> y -[B]-> z")
        truth = count_pattern(tiny_graph, query)
        estimate = estimator.estimate(query)
        assert estimate > 0
        assert estimate == pytest.approx(truth, rel=2.0)

    def test_acyclic_estimate_positive(self, medium_random_graph):
        estimator = SumRdfEstimator(medium_random_graph, num_buckets=32)
        labels = list(medium_random_graph.labels)
        query = templates.star(3).with_labels(labels[:3])
        assert estimator.estimate(query) >= 0.0

    def test_cyclic_budget_timeout(self, medium_random_graph):
        estimator = SumRdfEstimator(medium_random_graph, num_buckets=64)
        labels = list(medium_random_graph.labels)
        query = templates.cycle(4).with_labels(labels[:4])
        with pytest.raises(CountBudgetExceeded):
            estimator.estimate(query, budget=10)

    def test_cyclic_estimate_runs(self, small_random_graph):
        estimator = SumRdfEstimator(small_random_graph, num_buckets=16)
        labels = list(small_random_graph.labels)
        query = templates.triangle().with_labels(labels[:3])
        assert estimator.estimate(query) >= 0.0

    def test_bucket_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            SumRdfEstimator(tiny_graph, num_buckets=0)


class TestWanderJoin:
    def test_single_atom_exact(self, tiny_graph):
        wj = WanderJoinEstimator(tiny_graph, seed=1)
        assert wj.estimate(parse_pattern("x -[A]-> y"), ratio=1.0) == 3.0

    def test_unbiased_on_two_path(self, tiny_graph):
        """Mean of many WJ runs converges to the true count."""
        query = parse_pattern("x -[A]-> y -[B]-> z")
        truth = count_pattern(tiny_graph, query)
        wj = WanderJoinEstimator(tiny_graph, seed=42)
        runs = [wj.estimate(query, ratio=1.0) for _ in range(400)]
        assert sum(runs) / len(runs) == pytest.approx(truth, rel=0.15)

    def test_unbiased_on_triangle(self, small_random_graph):
        from repro.engine import PatternSampler

        sampler = PatternSampler(small_random_graph, seed=2)
        instance = sampler.sample_instance(templates.triangle(), max_tries=300)
        if instance is None:
            pytest.skip("no triangle instance")
        truth = count_pattern(small_random_graph, instance)
        wj = WanderJoinEstimator(small_random_graph, seed=7)
        runs = [wj.estimate(instance, ratio=1.0) for _ in range(300)]
        assert sum(runs) / len(runs) == pytest.approx(truth, rel=0.4)

    def test_ratio_validation(self, tiny_graph):
        wj = WanderJoinEstimator(tiny_graph)
        with pytest.raises(ValueError):
            wj.estimate(parse_pattern("x -[A]-> y"), ratio=0.0)

    def test_missing_label_estimates_zero(self, tiny_graph):
        wj = WanderJoinEstimator(tiny_graph)
        assert wj.estimate(parse_pattern("x -[Z]-> y"), ratio=0.5) == 0.0

    def test_timed_estimate(self, tiny_graph):
        wj = WanderJoinEstimator(tiny_graph, seed=3)
        value, elapsed = wj.timed_estimate(
            parse_pattern("x -[A]-> y -[B]-> z"), ratio=0.5
        )
        assert value >= 0.0
        assert elapsed >= 0.0

    def test_deterministic_given_seed(self, medium_random_graph):
        labels = list(medium_random_graph.labels)
        query = templates.path(3).with_labels(labels[:3])
        a = WanderJoinEstimator(medium_random_graph, seed=5).estimate(query, 0.01)
        b = WanderJoinEstimator(medium_random_graph, seed=5).estimate(query, 0.01)
        assert a == b


class TestRdf3xDefault:
    def test_single_atom(self, tiny_graph):
        estimator = Rdf3xDefaultEstimator(tiny_graph)
        assert estimator.estimate(parse_pattern("x -[A]-> y")) == 3.0

    def test_join_shrinks_estimate(self, medium_random_graph):
        graph = medium_random_graph
        estimator = Rdf3xDefaultEstimator(graph)
        labels = list(graph.labels)
        single = estimator.estimate(
            parse_pattern(f"x -[{labels[0]}]-> y")
        )
        joined = estimator.estimate(
            parse_pattern(f"x -[{labels[0]}]-> y -[{labels[1]}]-> z")
        )
        assert joined < single * graph.cardinality(labels[1])

    def test_underestimates_on_skew(self, medium_random_graph):
        graph = medium_random_graph
        estimator = Rdf3xDefaultEstimator(graph, magic=1.0)
        labels = list(graph.labels)
        under = 0
        total = 0
        for offset in range(6):
            query = templates.path(3).with_labels(
                [labels[(offset + i) % len(labels)] for i in range(3)]
            )
            truth = count_pattern(graph, query)
            if truth == 0:
                continue
            total += 1
            if estimator.estimate(query) < truth:
                under += 1
        assert under >= total / 2

    def test_never_zero_for_nonempty_relations(self, tiny_graph):
        estimator = Rdf3xDefaultEstimator(tiny_graph)
        value = estimator.estimate(
            parse_pattern("a -[A]-> b -[B]-> c -[C]-> d")
        )
        assert value > 0.0
