"""Machine-checked theory of §5 and the appendices.

* Theorem 5.1 — the MOLP LP optimum equals the minimum-weight (∅, A)
  path of CEG_M.
* Observation 1 — every CEG_M path (hence the bound) upper-bounds the
  true cardinality.
* Observation 3 / Appendix A — projection inequalities do not change
  the MOLP optimum.
* Appendix B — CBS == MOLP on acyclic queries over binary relations.
* Appendix C — CBS formulas are unsafe on cyclic queries (identity
  triangle counterexample); MOLP stays safe.
* Corollary D.1 — MOLP <= DBPLP for any cover.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import DegreeCatalog
from repro.core import (
    agm_bound,
    best_dbplp_bound,
    build_ceg_m,
    cbs_bound,
    dbplp_bound,
    distinct_estimates,
    molp_bound,
    molp_lp_bound,
)
from repro.engine import count_pattern
from repro.graph import LabeledDiGraph, generate_graph
from repro.query import parse_pattern, templates
from repro.query.shape import is_acyclic


@st.composite
def random_instance(draw):
    """A small random graph plus a small query over it."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = generate_graph(
        num_vertices=30,
        num_edges=draw(st.integers(min_value=20, max_value=120)),
        num_labels=3,
        seed=seed,
        closure=0.3,
    )
    labels = list(graph.labels)
    shape_name = draw(
        st.sampled_from(["path2", "path3", "star3", "fork", "triangle", "cycle4"])
    )
    base = {
        "path2": templates.path(2),
        "path3": templates.path(3),
        "star3": templates.star(3),
        "fork": templates.fork(1, 2),
        "triangle": templates.triangle(),
        "cycle4": templates.cycle(4),
    }[shape_name]
    chosen = [draw(st.sampled_from(labels)) for _ in range(len(base))]
    return graph, base.with_labels(chosen)


class TestTheorem51:
    @given(random_instance(), st.integers(min_value=1, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_lp_equals_min_path(self, case, h):
        graph, query = case
        catalog = DegreeCatalog(graph, h=h)
        combinatorial = molp_bound(query, catalog)
        numeric = molp_lp_bound(query, catalog)
        assert numeric == pytest.approx(combinatorial, rel=1e-6, abs=1e-9)

    @given(random_instance())
    @settings(max_examples=15, deadline=None)
    def test_projections_do_not_matter(self, case):
        """Observation 3: projection inequalities are redundant."""
        graph, query = case
        catalog = DegreeCatalog(graph, h=1)
        without = molp_lp_bound(query, catalog, include_projections=False)
        with_proj = molp_lp_bound(query, catalog, include_projections=True)
        assert without == pytest.approx(with_proj, rel=1e-6, abs=1e-9)


class TestObservation1:
    @given(random_instance(), st.integers(min_value=1, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_molp_upper_bounds_truth(self, case, h):
        graph, query = case
        catalog = DegreeCatalog(graph, h=h)
        truth = count_pattern(graph, query)
        assert molp_bound(query, catalog) >= truth - 1e-6

    @given(random_instance())
    @settings(max_examples=10, deadline=None)
    def test_every_path_is_an_upper_bound(self, case):
        """Observation 1: every (∅, A) path of CEG_M over-estimates."""
        graph, query = case
        if len(query.variables) > 5:
            return
        catalog = DegreeCatalog(graph, h=1)
        truth = count_pattern(graph, query)
        ceg = build_ceg_m(query, catalog)
        try:
            estimates = distinct_estimates(ceg, cap=2000)
        except Exception:
            return
        assert all(e >= truth - 1e-6 for e in estimates)


class TestMolpImprovesAgm:
    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_molp_at_most_agm_on_acyclic(self, case):
        """MOLP <= AGM on acyclic queries.

        On a forest the cover LP's incidence matrix is totally
        unimodular, so AGM's optimum is an integral edge cover, and any
        integral cover is realisable as a CEG_M path (each relation
        extends by deg(∅, attrs) = |R| or better).  On cyclic queries
        AGM may use fractional covers no path realises — e.g. x = 1/2
        on each atom of a single-label triangle gives |R|^{3/2}, and the
        degree-constraint MOLP bound can legitimately exceed it (a
        hypothesis-found counterexample: 30-vertex graph, triangle
        query, MOLP path = LP = 100 > AGM = 89.4, truth = 8) — so the
        domination claim is restricted to acyclic instances.
        """
        graph, query = case
        if not is_acyclic(query):
            return
        catalog = DegreeCatalog(graph, h=1)
        assert molp_bound(query, catalog) <= agm_bound(query, graph) * (1 + 1e-9)

    def test_cyclic_gap_example_stays_safe(self):
        """The triangle counterexample still upper-bounds the truth."""
        graph = generate_graph(
            num_vertices=30, num_edges=68, num_labels=3, seed=16, closure=0.3
        )
        query = templates.triangle().with_labels(["L0", "L0", "L0"])
        catalog = DegreeCatalog(graph, h=1)
        molp = molp_bound(query, catalog)
        assert molp > agm_bound(query, graph)  # the gap is real
        assert molp == pytest.approx(molp_lp_bound(query, catalog))  # Thm 5.1
        assert molp >= count_pattern(graph, query)  # Observation 1


class TestAppendixB:
    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_cbs_equals_molp_on_acyclic_binary(self, case):
        from repro.query.shape import is_acyclic

        graph, query = case
        if not is_acyclic(query):
            return
        catalog = DegreeCatalog(graph, h=1)
        assert cbs_bound(query, catalog) == pytest.approx(
            molp_bound(query, catalog), rel=1e-9
        )

    @given(random_instance())
    @settings(max_examples=20, deadline=None)
    def test_molp_at_most_cbs_everywhere_acyclic_rule(self, case):
        """MOLP is at least as tight as CBS on acyclic queries."""
        from repro.query.shape import is_acyclic

        graph, query = case
        if not is_acyclic(query):
            return
        catalog = DegreeCatalog(graph, h=1)
        assert molp_bound(query, catalog) <= cbs_bound(query, catalog) * (1 + 1e-9)


class TestAppendixC:
    def test_identity_triangle_counterexample(self):
        n = 40
        triples = [(i, i, label) for i in range(n) for label in ("R", "S", "T")]
        graph = LabeledDiGraph.from_triples(triples, num_vertices=n)
        triangle = parse_pattern("a -[R]-> b -[S]-> c -[T]-> a")
        catalog = DegreeCatalog(graph, h=1)
        truth = count_pattern(graph, triangle)
        assert truth == n
        # CBS's coverage formulas under-estimate on this cyclic query...
        assert cbs_bound(triangle, catalog) < truth
        # ...while MOLP remains a genuine upper bound.
        assert molp_bound(triangle, catalog) >= truth


class TestCorollaryD1:
    @given(random_instance())
    @settings(max_examples=20, deadline=None)
    def test_molp_at_most_dbplp_default_cover(self, case):
        graph, query = case
        catalog = DegreeCatalog(graph, h=1)
        molp = molp_bound(query, catalog)
        assert molp <= dbplp_bound(query, catalog) * (1 + 1e-6)

    @given(random_instance())
    @settings(max_examples=8, deadline=None)
    def test_molp_at_most_best_dbplp(self, case):
        graph, query = case
        if len(query) > 4:
            return
        catalog = DegreeCatalog(graph, h=1)
        molp = molp_bound(query, catalog)
        assert molp <= best_dbplp_bound(query, catalog) * (1 + 1e-6)


class TestSmallJoinStats:
    @given(random_instance())
    @settings(max_examples=15, deadline=None)
    def test_h2_at_most_h1(self, case):
        """More statistics can only tighten the MOLP bound (§5.1.1)."""
        graph, query = case
        h1 = molp_bound(query, DegreeCatalog(graph, h=1))
        h2 = molp_bound(query, DegreeCatalog(graph, h=2))
        assert h2 <= h1 * (1 + 1e-9)

    @given(random_instance())
    @settings(max_examples=15, deadline=None)
    def test_h2_still_upper_bound(self, case):
        graph, query = case
        truth = count_pattern(graph, query)
        assert molp_bound(query, DegreeCatalog(graph, h=2)) >= truth - 1e-6
