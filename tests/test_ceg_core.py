"""Tests for the generic CEG structure and path-statistics DP."""

import pytest

from repro.core import (
    CEG,
    distinct_estimates,
    estimate_from_ceg,
    hop_statistics,
    min_weight_path,
)
from repro.errors import EstimationError


def _diamond_ceg() -> CEG:
    """source -> {a: 2 | b: 3} -> target (x5 from a, x7 from b).

    Paths: 2*5=10 (2 hops), 3*7=21 (2 hops), and a long route
    source -> a -> c -> target: 2*2*2 = 8 (3 hops).
    """
    ceg = CEG(source="s", target="t")
    ceg.add_node("s", 0)
    ceg.add_node("a", 1)
    ceg.add_node("b", 1)
    ceg.add_node("c", 2)
    ceg.add_node("t", 3)
    ceg.add_edge("s", "a", 2.0)
    ceg.add_edge("s", "b", 3.0)
    ceg.add_edge("a", "t", 5.0)
    ceg.add_edge("b", "t", 7.0)
    ceg.add_edge("a", "c", 2.0)
    ceg.add_edge("c", "t", 2.0)
    return ceg


class TestCEGStructure:
    def test_rank_must_increase(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        ceg.add_node("t", 0)
        with pytest.raises(ValueError):
            ceg.add_edge("s", "t", 1.0)

    def test_unregistered_nodes_rejected(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        with pytest.raises(ValueError):
            ceg.add_edge("s", "t", 1.0)

    def test_rank_reregistration_conflict(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        with pytest.raises(ValueError):
            ceg.add_node("s", 1)

    def test_topological_order(self):
        ceg = _diamond_ceg()
        order = ceg.topological_order()
        assert order.index("s") < order.index("a") < order.index("t")

    def test_prune_unreachable(self):
        ceg = _diamond_ceg()
        ceg.add_node("dead", 1)
        ceg.add_edge("s", "dead", 9.0)  # no path onward to target
        ceg.prune_unreachable()
        assert "dead" not in ceg.nodes
        assert "a" in ceg.nodes


class TestHopStatistics:
    def test_hop_buckets(self):
        stats = hop_statistics(_diamond_ceg())
        assert set(stats) == {2, 3}
        assert stats[2].count == 2
        assert stats[3].count == 1

    def test_two_hop_values(self):
        stats = hop_statistics(_diamond_ceg())[2]
        assert stats.minimum == pytest.approx(10.0)
        assert stats.maximum == pytest.approx(21.0)
        assert stats.total == pytest.approx(31.0)

    def test_no_path(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        ceg.add_node("t", 1)
        assert hop_statistics(ceg) == {}


class TestEstimateFromCeg:
    def test_all_nine_values(self):
        ceg = _diamond_ceg()
        assert estimate_from_ceg(ceg, "max", "max") == pytest.approx(8.0)
        assert estimate_from_ceg(ceg, "max", "min") == pytest.approx(8.0)
        assert estimate_from_ceg(ceg, "max", "avg") == pytest.approx(8.0)
        assert estimate_from_ceg(ceg, "min", "max") == pytest.approx(21.0)
        assert estimate_from_ceg(ceg, "min", "min") == pytest.approx(10.0)
        assert estimate_from_ceg(ceg, "min", "avg") == pytest.approx(15.5)
        assert estimate_from_ceg(ceg, "all", "max") == pytest.approx(21.0)
        assert estimate_from_ceg(ceg, "all", "min") == pytest.approx(8.0)
        assert estimate_from_ceg(ceg, "all", "avg") == pytest.approx(13.0)

    def test_invalid_choices(self):
        ceg = _diamond_ceg()
        with pytest.raises(ValueError):
            estimate_from_ceg(ceg, "bogus", "max")
        with pytest.raises(ValueError):
            estimate_from_ceg(ceg, "max", "bogus")

    def test_no_path_raises(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        ceg.add_node("t", 1)
        with pytest.raises(EstimationError):
            estimate_from_ceg(ceg, "max", "max")


class TestDistinctEstimates:
    def test_values(self):
        estimates = distinct_estimates(_diamond_ceg())
        assert estimates == [8.0, 10.0, 21.0]

    def test_duplicates_collapse(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        ceg.add_node("a", 1)
        ceg.add_node("b", 1)
        ceg.add_node("t", 2)
        ceg.add_edge("s", "a", 2.0)
        ceg.add_edge("s", "b", 4.0)
        ceg.add_edge("a", "t", 6.0)
        ceg.add_edge("b", "t", 3.0)
        assert distinct_estimates(ceg) == [12.0]


class TestMinWeightPath:
    def test_min_path(self):
        product, edges = min_weight_path(_diamond_ceg())
        assert product == pytest.approx(8.0)
        assert [e.target for e in edges] == ["a", "c", "t"]

    def test_no_path_raises(self):
        ceg = CEG(source="s", target="t")
        ceg.add_node("s", 0)
        ceg.add_node("t", 1)
        with pytest.raises(EstimationError):
            min_weight_path(ceg)
