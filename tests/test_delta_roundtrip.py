"""Round-trip identity: insert a random batch, delete it, nothing moved.

Applying a random batch of *effective* inserts and then deleting exactly
those edges must restore every catalog bit-identically — the strongest
cheap invariant of the incremental maintainers, since it composes two
full maintenance passes (discovery + recount on the way in, zero-drop +
recount on the way out) and any asymmetry between them shows up as a
byte diff.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.presets import running_example_graph
from repro.delta import (
    DELETE,
    INSERT,
    EdgeUpdate,
    UpdateBatch,
    apply_updates,
    normalize_updates,
)
from repro.stats import StatsBuildConfig, build_statistics
from repro.stats.artifact import dataset_fingerprint

LABELS = ("A", "B", "C", "D", "E", "NEW")

# Vertex ids stay inside the example graph's 13-vertex universe: an
# insert past it would *grow* the universe, and deletion cannot shrink
# it back — a fingerprint change by design, not a maintenance bug.
edges = st.tuples(
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=0, max_value=12),
    st.sampled_from(LABELS),
)


def snapshot(store):
    return {
        "markov": store.markov.to_artifact(),
        "degrees": store.degrees.to_artifact(),
        "fingerprint": dataset_fingerprint(store.graph),
    }


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(edges, min_size=1, max_size=8))
def test_insert_then_delete_same_edges_restores_catalogs(triples):
    graph = running_example_graph()
    store = build_statistics(
        graph, StatsBuildConfig(h=2, molp_h=2, baselines=False)
    )
    before = snapshot(store)
    batch = UpdateBatch(
        EdgeUpdate(INSERT, src, dst, label) for src, dst, label in triples
    )
    effective, _ = normalize_updates(graph, batch)
    outcome = apply_updates(store, batch, compact_threshold=100.0)
    assert outcome.inserts == len(effective)
    inverse = UpdateBatch(
        EdgeUpdate(DELETE, src, dst, label)
        for src, dst, label in sorted(effective)
    )
    undo = apply_updates(store, inverse, compact_threshold=100.0)
    assert undo.deletes == len(effective)
    assert snapshot(store) == before


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(edges, min_size=1, max_size=6),
    st.lists(edges, min_size=0, max_size=6),
)
def test_mixed_batch_then_exact_inverse_restores_catalogs(adds, removes):
    """The general inverse: delete the effective inserts, re-insert the
    effective deletes (op-wise mirroring is *not* an inverse for no-op
    operations, which is exactly what set semantics dictates)."""
    graph = running_example_graph()
    store = build_statistics(
        graph, StatsBuildConfig(h=2, molp_h=2, baselines=False)
    )
    before = snapshot(store)
    batch = UpdateBatch(
        [EdgeUpdate(INSERT, *edge[:2], edge[2]) for edge in adds]
        + [EdgeUpdate(DELETE, *edge[:2], edge[2]) for edge in removes]
    )
    inserted, deleted = normalize_updates(graph, batch)
    apply_updates(store, batch, compact_threshold=100.0)
    inverse = UpdateBatch(
        [EdgeUpdate(DELETE, *t[:2], t[2]) for t in sorted(inserted)]
        + [EdgeUpdate(INSERT, *t[:2], t[2]) for t in sorted(deleted)]
    )
    apply_updates(store, inverse, compact_threshold=100.0)
    assert snapshot(store) == before
