"""Smoke tests for the experiment drivers and the CLI.

Each driver runs end to end on a micro configuration; assertions are
structural (rows exist, columns present), not statistical — the shape
assertions live in the benchmark suite where workloads are big enough.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    figure9_acyclic_space,
    figure10_cyclic_triangles,
    figure11_large_cycles,
    figure12_bound_sketch,
    figure13_summary_comparison,
    figure14_wanderjoin,
    figure15_plan_quality,
    table1_markov_example,
    table2_datasets,
)

TINY = ExperimentConfig(
    scale=0.02,
    per_template=1,
    acyclic_sizes=(6,),
    gcare_sizes=(3,),
    sketch_budgets=(1, 4),
    wj_ratios=(0.1,),
    datasets=("hetionet", "epinions"),
)


class TestDrivers:
    def test_table1(self):
        rows, rendered = table1_markov_example()
        assert len(rows) == 3
        assert "Markov" in rendered

    def test_table2(self):
        rows, rendered = table2_datasets(TINY)
        assert len(rows) == 6

    def test_fig9(self):
        rows, rendered = figure9_acyclic_space(TINY)
        estimators = {row["estimator"] for row in rows}
        assert "max-hop-max" in estimators and "P*" in estimators
        assert "Figure 9" in rendered

    def test_fig10(self):
        rows, rendered = figure10_cyclic_triangles(TINY)
        # Tiny graphs may have no triangle-only queries; structure only.
        assert "Figure 10" in rendered

    def test_fig11(self):
        rows, rendered = figure11_large_cycles(TINY)
        assert "Figure 11" in rendered
        if rows:
            assert {row["ceg"] for row in rows} <= {"CEG_O", "CEG_OCR"}

    def test_fig12(self):
        rows, rendered = figure12_bound_sketch(TINY)
        assert "Figure 12" in rendered
        budgets = {row["K"] for row in rows}
        assert budgets <= {1, 4}

    def test_fig13(self):
        rows, rendered = figure13_summary_comparison(TINY)
        estimators = {row["estimator"] for row in rows}
        assert {"max-hop-max", "MOLP", "CS", "SumRDF"} <= estimators

    def test_fig14(self):
        rows, rendered = figure14_wanderjoin(TINY)
        estimators = {row["estimator"] for row in rows}
        assert "WJ" in estimators

    def test_fig15(self):
        config = ExperimentConfig(
            scale=0.02, per_template=1, acyclic_sizes=(6,),
            datasets=("dblp",),
        )
        rows, rendered = figure15_plan_quality(config)
        assert "Figure 15" in rendered


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out

    def test_table1_runs(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        assert "Markov" in capsys.readouterr().out

    def test_out_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["nope"])
