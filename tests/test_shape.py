"""Tests for query shape analysis (cycles, depth, decompositions)."""

from repro.query import QueryPattern, shape, templates


class TestCycles:
    def test_path_is_acyclic(self):
        assert shape.is_acyclic(templates.path(4))

    def test_star_is_acyclic(self):
        assert shape.is_acyclic(templates.star(5))

    def test_cycle_detected(self):
        assert not shape.is_acyclic(templates.cycle(4))

    def test_triangle_cycles(self):
        found = shape.cycles(templates.triangle())
        assert found == [frozenset({0, 1, 2})]

    def test_four_cycle_length(self):
        assert shape.largest_cycle_length(templates.cycle(4)) == 4

    def test_acyclic_has_no_cycles(self):
        assert shape.largest_cycle_length(templates.path(3)) == 0

    def test_self_loop_is_cycle(self):
        pattern = QueryPattern([("a", "a", "A"), ("a", "b", "B")])
        assert frozenset({0}) in shape.cycles(pattern)

    def test_parallel_atoms_form_2cycle(self):
        pattern = QueryPattern([("a", "b", "A"), ("a", "b", "B")])
        assert frozenset({0, 1}) in shape.cycles(pattern)

    def test_k4_has_triangles_and_4cycles(self):
        lengths = {len(c) for c in shape.cycles(templates.clique(4))}
        assert 3 in lengths and 4 in lengths

    def test_bowtie_only_triangles(self):
        assert shape.has_only_triangles(templates.bowtie())

    def test_diamond_not_only_triangles(self):
        # The diamond contains a 4-cycle (the square) plus triangles.
        assert not shape.has_only_triangles(templates.diamond_with_chord())

    def test_large_cycle_classification(self):
        assert shape.is_cyclic_with_large_cycles(templates.cycle(4), h=3)
        assert not shape.is_cyclic_with_large_cycles(templates.triangle(), h=3)
        # K4: every 4-cycle contains a chord triangle, but the 4-cycles
        # still exist as simple cycles, so K4 counts as "large" here; the
        # workload split in the paper keys on whether all cycles are
        # triangles, which for K4 is false.
        assert shape.largest_cycle_length(templates.clique(4)) == 4


class TestDepth:
    def test_star_depth(self):
        assert shape.depth(templates.star(6)) == 2

    def test_path_depth(self):
        assert shape.depth(templates.path(6)) == 6

    def test_single_edge_depth(self):
        assert shape.depth(templates.path(1)) == 1

    def test_tree_of_depth_hits_targets(self):
        for k in (6, 7, 8):
            for d in range(2, k + 1):
                tree = templates.tree_of_depth(k, d)
                assert len(tree) == k
                assert shape.depth(tree) == d, (k, d)


class TestSpanningDecomposition:
    def test_acyclic_has_no_closures(self):
        tree, closures = shape.spanning_tree_and_closures(templates.path(4))
        assert len(tree) == 4 and closures == []

    def test_cycle_has_one_closure(self):
        tree, closures = shape.spanning_tree_and_closures(templates.cycle(5))
        assert len(tree) == 4 and len(closures) == 1

    def test_walk_order_validity(self):
        pattern = templates.clique(4)
        tree, closures = shape.spanning_tree_and_closures(pattern)
        bound: set[str] = set()
        for position, index in enumerate(tree + closures):
            edge = pattern.edges[index]
            if position == 0:
                bound.update(edge.variables())
                continue
            assert edge.src in bound or edge.dst in bound
            bound.update(edge.variables())
        assert bound == set(pattern.variables)


class TestCycleCompletions:
    def test_four_cycle_missing_one_edge(self):
        pattern = templates.cycle(4)
        completions = shape.cycle_completions(pattern, frozenset({0, 1, 2}), h=3)
        assert completions == {3: frozenset({0, 1, 2, 3})}

    def test_not_triggered_when_two_missing(self):
        pattern = templates.cycle(4)
        assert shape.cycle_completions(pattern, frozenset({0, 1}), h=3) == {}

    def test_not_triggered_for_small_cycles(self):
        pattern = templates.triangle()
        assert shape.cycle_completions(pattern, frozenset({0, 1}), h=3) == {}
