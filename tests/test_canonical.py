"""Tests for canonical pattern keys (renaming invariance)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import QueryPattern, canonical_key, canonical_pattern, templates


class TestCanonicalKey:
    def test_renaming_invariance(self):
        p1 = QueryPattern([("a", "b", "A"), ("b", "c", "B")])
        p2 = QueryPattern([("x", "y", "A"), ("y", "z", "B")])
        assert canonical_key(p1) == canonical_key(p2)

    def test_direction_matters(self):
        forward = QueryPattern([("a", "b", "A"), ("b", "c", "B")])
        backward = QueryPattern([("a", "b", "A"), ("c", "b", "B")])
        assert canonical_key(forward) != canonical_key(backward)

    def test_label_matters(self):
        p1 = QueryPattern([("a", "b", "A")])
        p2 = QueryPattern([("a", "b", "B")])
        assert canonical_key(p1) != canonical_key(p2)

    def test_edge_order_invariance(self):
        p1 = QueryPattern([("a", "b", "A"), ("b", "c", "B")])
        p2 = QueryPattern([("b", "c", "B"), ("a", "b", "A")])
        assert canonical_key(p1) == canonical_key(p2)

    def test_star_vs_path(self):
        assert canonical_key(templates.star(3)) != canonical_key(templates.path(3))

    def test_canonical_pattern_roundtrip(self):
        pattern = templates.fork(2, 3)
        rebuilt = canonical_pattern(pattern)
        assert canonical_key(rebuilt) == canonical_key(pattern)
        assert len(rebuilt) == len(pattern)


@st.composite
def small_patterns(draw):
    """Random connected patterns with <= 4 edges and <= 3 labels."""
    num_edges = draw(st.integers(min_value=1, max_value=4))
    labels = ["A", "B", "C"]
    edges = []
    variables = ["v0", "v1"]
    edges.append((
        "v0", "v1", draw(st.sampled_from(labels)),
    ))
    for i in range(1, num_edges):
        anchor = draw(st.sampled_from(variables))
        if draw(st.booleans()):
            new = f"v{len(variables)}"
            variables.append(new)
            other = new
        else:
            other = draw(st.sampled_from(variables))
        label = draw(st.sampled_from(labels))
        if draw(st.booleans()):
            candidate = (anchor, other, label)
        else:
            candidate = (other, anchor, label)
        if candidate in edges:
            continue
        edges.append(candidate)
    return QueryPattern(edges)


class TestCanonicalProperty:
    @given(small_patterns(), st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_random_renaming_preserves_key(self, pattern, seed):
        rng = random.Random(seed)
        names = [f"w{i}" for i in range(len(pattern.variables))]
        rng.shuffle(names)
        mapping = dict(zip(pattern.variables, names))
        assert canonical_key(pattern) == canonical_key(pattern.rename(mapping))
