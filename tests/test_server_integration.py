"""End-to-end server tests: bit-identity, coalescing, hot reload, admission.

The ISSUE's acceptance gates live here:

* served estimates are **bit-identical** to in-process
  ``EstimationSession.estimate_batch`` for every §4.2 estimator + MOLP;
* N concurrent identical cold-shape requests collapse into **one**
  underlying CEG build (coalescer + session counters prove it);
* hot-reloading a tenant's artifact mid-traffic fails **zero** in-flight
  requests;
* admission control sheds (``overloaded``) and enforces deadlines
  (``deadline_exceeded``) with exit-code-3 semantics, and the server
  shuts down cleanly.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.datasets.presets import running_example_graph
from repro.query.parser import parse_pattern
from repro.server import (
    EstimationClient,
    ServerConfig,
    ServerError,
    ServerUnavailable,
    StoreRegistry,
    ThreadedServer,
    wait_until_ready,
)
from repro.service.session import EstimationSession
from repro.stats import StatsBuildConfig, build_statistics

ALL_SPECS = [
    f"{hop}-{agg}"
    for hop in ("max-hop", "min-hop", "all-hops")
    for agg in ("max", "min", "avg")
] + ["MOLP"]

QUERIES = [
    "a -[A]-> b -[B]-> c",
    "x -[B]-> y -[C]-> z",
    "p -[A]-> q -[B]-> r -[D]-> s",
    "u -[B]-> v, u -[B]-> w",
    "m -[E]-> n",
]


@pytest.fixture(scope="module")
def artifact_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("server")
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(base / "v1")
    store.save(base / "v2")
    return base


@pytest.fixture(scope="module")
def reference_session(artifact_dirs):
    """The in-process session the server must match bit for bit."""
    from repro.stats import StatisticsStore

    return StatisticsStore.load(artifact_dirs / "v1").session()


@pytest.fixture()
def server(artifact_dirs):
    registry = StoreRegistry()
    registry.load("example", artifact_dirs / "v1")
    with ThreadedServer(
        registry, ServerConfig(port=0, max_inflight=8, queue_limit=16)
    ) as threaded:
        yield threaded


class TestBitIdentity:
    def test_all_estimators_match_in_process_batch(
        self, server, reference_session
    ):
        patterns = [parse_pattern(text) for text in QUERIES]
        batch = reference_session.estimate_batch(patterns, specs=ALL_SPECS)
        with EstimationClient(server.host, server.port) as client:
            for index, text in enumerate(QUERIES):
                result = client.estimate("example", text, ALL_SPECS)
                for spec in ALL_SPECS:
                    cell = batch.item(index, spec)
                    if cell.ok:
                        served = result["estimates"][spec]
                        assert served == cell.estimate, (
                            f"{spec} on {text!r}: served {served!r} != "
                            f"in-process {cell.estimate!r}"
                        )
                    else:
                        assert result["errors"][spec] == cell.error

    def test_renamed_query_serves_identical_floats(self, server):
        with EstimationClient(server.host, server.port) as client:
            first = client.estimate("example", QUERIES[0], ALL_SPECS)
            renamed = client.estimate(
                "example", "q0 -[A]-> q1 -[B]-> q2", ALL_SPECS
            )
        assert first["estimates"] == renamed["estimates"]


class TestErrors:
    def test_unknown_tenant(self, server):
        with EstimationClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("nope", "a -[A]-> b")
        assert info.value.code == "unknown_tenant"
        assert info.value.exit_code == 2

    def test_malformed_query(self, server):
        with EstimationClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("example", "a -[A")
        assert info.value.code == "malformed_query"
        assert info.value.exit_code == 2

    def test_unknown_estimator(self, server):
        with EstimationClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("example", "a -[A]-> b", ["bogus"])
        assert info.value.code == "unknown_estimator"
        assert info.value.exit_code == 2

    def test_unsupported_spec_rejected_up_front(self, server):
        # MOLP-sketch needs the base graph; a graph-free tenant cannot
        # serve it, and the server says so before admitting the request.
        with EstimationClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("example", "a -[A]-> b", ["MOLP-sketch4"])
        assert info.value.code == "unsupported_spec"

    def test_estimation_failure_rides_in_errors_map(self, server):
        # A disconnected pattern is per-query data trouble (exit 1 in
        # the batch taxonomy), not a request error: the response is ok
        # with the failure in its errors map.
        with EstimationClient(server.host, server.port) as client:
            result = client.estimate(
                "example", "a -[A]-> b, c -[B]-> d", ["max-hop-max"]
            )
        assert result["estimates"] == {}
        assert "max-hop-max" in result["errors"]

    def test_raw_garbage_line_gets_typed_error(self, server):
        with EstimationClient(server.host, server.port) as client:
            response = client.request({"v": 99, "verb": "ping"})
            assert response["ok"] is False
            assert response["error"]["code"] == "unsupported_version"
            # The connection survives a bad request.
            assert client.ping()["pong"] is True


def _slow_estimate(monkeypatch, seconds):
    """Make every session estimate slow enough to observe concurrency."""
    original = EstimationSession.estimate

    def slowed(self, pattern, spec="max-hop-max"):
        time.sleep(seconds)
        return original(self, pattern, spec)

    monkeypatch.setattr(EstimationSession, "estimate", slowed)


class TestCoalescing:
    def test_concurrent_identical_cold_requests_build_once(
        self, server, monkeypatch
    ):
        _slow_estimate(monkeypatch, 0.25)
        fan_out = 8
        query = "c0 -[C]-> c1 -[D]-> c2"  # cold: unused by other tests
        before_server = server.server.stats_result()
        before_cache = before_server["tenants"]["example"]["cache"]
        barrier = threading.Barrier(fan_out)
        results: list[dict] = [None] * fan_out
        failures: list[Exception] = []

        def fire(slot):
            try:
                with EstimationClient(server.host, server.port) as client:
                    barrier.wait(10)
                    results[slot] = client.estimate(
                        "example", query, ["max-hop-max"]
                    )
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [
            threading.Thread(target=fire, args=(slot,))
            for slot in range(fan_out)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not failures
        estimates = {json.dumps(result["estimates"]) for result in results}
        assert len(estimates) == 1, "all callers got the identical estimate"

        after_server = server.server.stats_result()
        after_cache = after_server["tenants"]["example"]["cache"]
        skeleton_builds = (
            after_cache["skeletons"]["misses"]
            - before_cache["skeletons"]["misses"]
        )
        assert skeleton_builds == 1, (
            f"{fan_out} concurrent identical requests must collapse into "
            f"one CEG build, saw {skeleton_builds}"
        )
        coalesced = (
            after_server["coalescer"]["followers"]
            - before_server["coalescer"]["followers"]
        )
        estimate_hits = (
            after_cache["estimates"]["hits"]
            - before_cache["estimates"]["hits"]
        )
        # Every non-leader either coalesced onto the in-flight build or
        # (arriving after it finished) hit the estimate LRU.
        assert coalesced + estimate_hits == fan_out - 1
        assert coalesced >= 1, "the single-flight path was exercised"


class TestHotReload:
    def test_reload_mid_traffic_fails_zero_requests(
        self, server, reference_session
    ):
        patterns = [parse_pattern(text) for text in QUERIES]
        batch = reference_session.estimate_batch(
            patterns, specs=["max-hop-max", "MOLP"]
        )
        expected = {
            text: {
                spec: batch.item(index, spec).estimate
                for spec in ("max-hop-max", "MOLP")
            }
            for index, text in enumerate(QUERIES)
        }
        stop = threading.Event()
        failures: list[str] = []
        generations: set[int] = set()
        completed = [0] * 4

        def hammer(slot):
            with EstimationClient(server.host, server.port) as client:
                position = 0
                while not stop.is_set():
                    text = QUERIES[position % len(QUERIES)]
                    position += 1
                    try:
                        result = client.estimate(
                            "example", text, ["max-hop-max", "MOLP"]
                        )
                    except Exception as error:
                        failures.append(f"{text!r}: {error}")
                        return
                    if result["errors"]:
                        failures.append(f"{text!r}: {result['errors']}")
                        return
                    if result["estimates"] != expected[text]:
                        failures.append(
                            f"{text!r}: {result['estimates']} != "
                            f"{expected[text]}"
                        )
                        return
                    generations.add(result["generation"])
                    completed[slot] += 1

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.25)
        with EstimationClient(server.host, server.port) as client:
            v2 = client.reload("example", str(server.registry.get("example").path.parent / "v2"))
            assert v2["generation"] == 2
        time.sleep(0.25)
        stop.set()
        for thread in threads:
            thread.join(30)
        assert failures == [], f"in-flight requests failed: {failures[:3]}"
        assert sum(completed) > 0
        assert generations == {1, 2}, (
            "traffic was served by both artifact versions across the swap"
        )


class TestAdmissionControl:
    @pytest.fixture()
    def tiny_server(self, artifact_dirs):
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        with ThreadedServer(
            registry,
            ServerConfig(port=0, max_inflight=1, queue_limit=0),
        ) as threaded:
            yield threaded

    def test_overload_sheds_with_exit_3(self, tiny_server, monkeypatch):
        _slow_estimate(monkeypatch, 0.6)
        first_done = []

        def occupy():
            with EstimationClient(tiny_server.host, tiny_server.port) as client:
                first_done.append(
                    client.estimate("example", "a -[A]-> b", ["max-hop-max"])
                )

        thread = threading.Thread(target=occupy)
        thread.start()
        time.sleep(0.2)  # let the first request occupy the only slot
        with EstimationClient(tiny_server.host, tiny_server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("example", "z -[E]-> w", ["max-hop-max"])
        thread.join(30)
        assert info.value.code == "overloaded"
        assert info.value.exit_code == 3
        assert first_done and first_done[0]["estimates"], (
            "the admitted request still completed"
        )
        stats = tiny_server.server.stats_result()
        assert stats["admission"]["shed_total"] == 1

    def test_deadline_exceeded(self, tiny_server, monkeypatch):
        _slow_estimate(monkeypatch, 0.6)
        with EstimationClient(tiny_server.host, tiny_server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate(
                    "example", "a -[A]-> b", ["max-hop-max"], deadline_ms=50
                )
            assert info.value.code == "deadline_exceeded"
            assert info.value.exit_code == 3
            stats = tiny_server.server.stats_result()
            assert stats["admission"]["deadline_exceeded_total"] == 1
            # The worker thread cannot be interrupted: it keeps its
            # admission slot (visible as `abandoned`) until it finishes,
            # so the pool never over-commits behind expired deadlines.
            assert stats["admission"]["abandoned"] == 1
            deadline = time.monotonic() + 10
            while (
                tiny_server.server.stats_result()["admission"]["abandoned"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = tiny_server.server.stats_result()
            assert stats["admission"]["abandoned"] == 0
            # ...and once the zombie drains, serving resumes normally.
            result = client.estimate("example", "a -[A]-> b", ["max-hop-max"])
            assert result["estimates"]["max-hop-max"] > 0


class TestStatsVerb:
    def test_stats_snapshot_shape(self, server):
        with EstimationClient(server.host, server.port) as client:
            client.estimate("example", "a -[A]-> b", ["max-hop-max", "MOLP"])
            stats = client.stats()
        assert stats["uptime_seconds"] >= 0
        tenant = stats["tenants"]["example"]
        assert tenant["generation"] >= 1
        assert set(tenant["cache"]) == {"skeletons", "estimates"}
        requests = tenant["requests"]
        assert requests["requests"] >= 1
        assert requests["ok"] >= 1
        assert sum(requests["latency_ms"]["buckets"].values()) == (
            requests["requests"]
        )
        admission = stats["admission"]
        assert admission["max_inflight"] == 8
        assert admission["queue_depth"] == 0
        assert {"leaders", "followers", "calls", "in_flight"} <= set(
            stats["coalescer"]
        )
        assert stats["requests"]["by_verb"]["estimate"] >= 1

    def test_reload_failure_is_typed_and_non_fatal(self, server):
        with EstimationClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as info:
                client.reload("example", "/definitely/not/there")
            assert info.value.code == "reload_failed"
            assert info.value.exit_code == 2
            # Serving continues on the old artifact.
            result = client.estimate("example", "a -[A]-> b")
            assert result["estimates"]


class TestShutdown:
    def test_shutdown_verb_drains_cleanly(self, artifact_dirs):
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        threaded = ThreadedServer(registry, ServerConfig(port=0))
        threaded.start()
        with EstimationClient(threaded.host, threaded.port) as client:
            assert client.estimate("example", "a -[A]-> b")["estimates"]
            assert client.shutdown() == {"shutting_down": True}
        threaded._thread.join(30)
        assert not threaded._thread.is_alive(), "server thread exited"
        with pytest.raises(ServerUnavailable):
            with EstimationClient(threaded.host, threaded.port) as client:
                client.ping()

    def test_grace_expiry_sends_typed_shutting_down(self, artifact_dirs):
        """Satellite regression: a request straddling the drain window.

        When the shutdown grace expires with a request still computing,
        its client must receive the typed ``shutting_down`` error (exit
        3) the protocol taxonomy promises — the regression closed the
        socket outright, surfacing as a bare connection reset.
        """
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        entry = registry.get("example")
        original = entry.session.estimate_one

        def slow_estimate(pattern, spec):
            time.sleep(1.5)  # far longer than the grace window below
            return original(pattern, spec)

        entry.session.estimate_one = slow_estimate
        threaded = ThreadedServer(
            registry,
            ServerConfig(port=0, shutdown_grace_seconds=0.2),
        )
        threaded.start()
        outcome: dict = {}

        def straddler():
            try:
                with EstimationClient(
                    threaded.host, threaded.port, timeout=30.0
                ) as client:
                    outcome["result"] = client.estimate(
                        "example", "a -[A]-> b"
                    )
            except ServerError as error:
                outcome["error"] = error
            except ServerUnavailable as error:
                outcome["reset"] = error

        worker = threading.Thread(target=straddler)
        worker.start()
        time.sleep(0.4)  # request is admitted and sleeping in the pool
        threaded.stop()
        worker.join(30)
        assert not worker.is_alive()
        assert "reset" not in outcome, (
            f"in-flight client saw a bare connection reset instead of "
            f"the typed shutting_down error: {outcome.get('reset')}"
        )
        error = outcome.get("error")
        assert error is not None, (
            f"slow request unexpectedly completed: {outcome.get('result')}"
        )
        assert error.code == "shutting_down"
        assert error.exit_code == 3


class TestQueryCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_query_roundtrip(self, capsys, server):
        code, out, _ = self.run_cli(
            capsys,
            "query", "--port", str(server.port), "--tenant", "example",
            "-q", "a -[A]-> b -[B]-> c", "-e", "all9", "-e", "MOLP",
        )
        assert code == 0
        report = json.loads(out)
        assert report["tenant"] == "example"
        assert len(report["estimators"]) == 10
        [result] = report["results"]
        assert set(result["estimates"]) == set(report["estimators"])

    def test_query_unknown_tenant_exits_2(self, capsys, server):
        code, _, err = self.run_cli(
            capsys,
            "query", "--port", str(server.port), "--tenant", "nope",
            "-q", "a -[A]-> b",
        )
        assert code == 2
        assert "unknown_tenant" in err

    def test_query_estimation_failure_exits_1(self, capsys, server):
        code, out, _ = self.run_cli(
            capsys,
            "query", "--port", str(server.port), "--tenant", "example",
            "-q", "a -[A]-> b, c -[B]-> d",
        )
        assert code == 1
        report = json.loads(out)
        assert report["results"][0]["errors"]

    def test_query_dead_server_exits_3(self, capsys, server):
        code, _, err = self.run_cli(
            capsys,
            "query", "--host", "127.0.0.1", "--port", "1",
            "--tenant", "example", "-q", "a -[A]-> b", "--timeout", "2",
        )
        assert code == 3
        assert "cannot connect" in err

    def test_query_stats(self, capsys, server):
        code, out, _ = self.run_cli(
            capsys, "query", "--port", str(server.port), "--stats"
        )
        assert code == 0
        assert "admission" in json.loads(out)

    def test_query_needs_exactly_one_mode(self, capsys, server):
        code, _, err = self.run_cli(
            capsys, "query", "--port", str(server.port)
        )
        assert code == 2
        assert "exactly one" in err


class TestServeCli:
    def test_serve_requires_tenants(self, capsys):
        assert main(["serve"]) == 2
        assert "--tenant" in capsys.readouterr().err

    def test_serve_bad_tenant_spec_exits_2(self, capsys):
        assert main(["serve", "--tenant", "no-equals-sign"]) == 2
        assert "NAME=DIR" in capsys.readouterr().err

    def test_serve_missing_artifact_exits_2(self, capsys, tmp_path):
        # Satellite: a missing artifact directory surfaces as the
        # friendly DatasetError and exit code 2, not a traceback.
        code = main(["serve", "--tenant", f"example={tmp_path / 'nope'}"])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err

    def test_serve_subprocess_end_to_end(self, artifact_dirs):
        """`repro serve` as a real process: ready line, query, shutdown."""
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--tenant", f"example={artifact_dirs / 'v1'}", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(
                    Path(__file__).resolve().parent.parent / "src"
                ),
            },
        )
        try:
            ready = json.loads(process.stdout.readline())
            assert ready["event"] == "ready"
            assert ready["tenants"] == ["example"]
            port = ready["port"]
            wait_until_ready("127.0.0.1", port, timeout=30)
            with EstimationClient("127.0.0.1", port) as client:
                result = client.estimate("example", "a -[A]-> b", ["MOLP"])
                assert result["estimates"]["MOLP"] > 0
                client.shutdown()
            assert process.wait(timeout=30) == 0, "clean exit after shutdown"
            assert json.loads(process.stdout.readline())["event"] == "stopped"
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
