"""StoreRegistry hot-reload semantics and the single-flight coalescer."""

import threading

import pytest

from repro.datasets.presets import running_example_graph
from repro.errors import DatasetError
from repro.server.coalescer import SingleFlight
from repro.server.registry import StoreRegistry
from repro.stats import StatsBuildConfig, build_statistics


@pytest.fixture(scope="module")
def artifact_dirs(tmp_path_factory):
    """Two saved versions of the example artifact + one other-dataset dir."""
    base = tmp_path_factory.mktemp("registry")
    store = build_statistics(
        running_example_graph(),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="example",
    )
    store.save(base / "v1")
    store.save(base / "v2")
    from repro.graph.generators import generate_graph

    other = build_statistics(
        generate_graph(num_vertices=20, num_edges=60, num_labels=3, seed=3),
        StatsBuildConfig(h=2, molp_h=2),
        dataset_name="other",
    )
    other.save(base / "other")
    return base


class TestRegistry:
    def test_load_and_get(self, artifact_dirs):
        registry = StoreRegistry()
        entry = registry.load("example", artifact_dirs / "v1")
        assert entry.generation == 1
        assert registry.get("example") is entry
        assert registry.get("nope") is None
        assert registry.names() == ["example"]
        assert len(registry) == 1

    def test_load_missing_directory_is_friendly(self, artifact_dirs):
        registry = StoreRegistry()
        with pytest.raises(DatasetError, match="does not exist"):
            registry.load("example", artifact_dirs / "missing")

    def test_load_duplicate_name_rejected(self, artifact_dirs):
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        with pytest.raises(DatasetError, match="already registered"):
            registry.load("example", artifact_dirs / "v2")

    def test_reload_swaps_atomically(self, artifact_dirs):
        registry = StoreRegistry()
        old = registry.load("example", artifact_dirs / "v1")
        new = registry.reload("example", artifact_dirs / "v2")
        assert new.generation == 2
        assert registry.get("example") is new
        assert new.session is not old.session
        # The old entry keeps serving for requests that captured it.
        from repro.query.parser import parse_pattern

        pattern = parse_pattern("a -[A]-> b")
        assert old.session.estimate(pattern) == new.session.estimate(pattern)

    def test_reload_default_path_rereads_current(self, artifact_dirs):
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        entry = registry.reload("example")
        assert entry.generation == 2
        assert entry.path == artifact_dirs / "v1"

    def test_reload_unknown_tenant(self, artifact_dirs):
        registry = StoreRegistry()
        with pytest.raises(DatasetError, match="unknown tenant"):
            registry.reload("example", artifact_dirs / "v1")

    def test_reload_rejects_fingerprint_change(self, artifact_dirs):
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        with pytest.raises(DatasetError, match="different dataset"):
            registry.reload("example", artifact_dirs / "other")
        # The failed reload left the old version serving.
        assert registry.get("example").generation == 1
        entry = registry.reload(
            "example", artifact_dirs / "other", allow_fingerprint_change=True
        )
        assert entry.generation == 2
        assert entry.store.manifest.dataset_name == "other"

    def test_bad_artifact_leaves_old_version_serving(
        self, artifact_dirs, tmp_path
    ):
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "manifest.json").write_text("{not json", encoding="utf-8")
        registry = StoreRegistry()
        live = registry.load("example", artifact_dirs / "v1")
        with pytest.raises(DatasetError):
            registry.reload("example", broken)
        assert registry.get("example") is live

    def test_stats_shape(self, artifact_dirs):
        registry = StoreRegistry()
        registry.load("example", artifact_dirs / "v1")
        stats = registry.stats()
        payload = stats["example"]
        assert payload["generation"] == 1
        assert payload["dataset"] == "example"
        assert set(payload["cache"]) == {"skeletons", "estimates"}
        assert payload["fingerprint"]
        assert payload["h"] == 2

    def test_session_kwargs_survive_reload(self, artifact_dirs):
        registry = StoreRegistry(skeleton_capacity=3, estimate_capacity=5)
        registry.load("example", artifact_dirs / "v1")
        entry = registry.reload("example", artifact_dirs / "v2")
        assert entry.session.stats().skeletons.capacity == 3
        assert entry.session.stats().estimates.capacity == 5


class TestSingleFlight:
    def test_concurrent_callers_share_one_execution(self):
        flight = SingleFlight()
        calls = []
        enter = threading.Barrier(8)
        release = threading.Event()

        def work():
            calls.append(threading.get_ident())
            release.wait(5)
            return object()

        results = [None] * 8

        def run(slot):
            enter.wait(5)
            results[slot] = flight.do("key", work)

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        # Give followers time to pile up behind the leader, then let it go.
        while flight.stats().followers < 7:
            if not any(thread.is_alive() for thread in threads):
                break
        release.set()
        for thread in threads:
            thread.join(10)
        assert len(calls) == 1, "exactly one leader ran the computation"
        assert all(result is results[0] for result in results), (
            "followers received the leader's object"
        )
        stats = flight.stats()
        assert stats.leaders == 1
        assert stats.followers == 7
        assert stats.calls == 8
        assert stats.in_flight == 0

    def test_different_keys_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == 1
        assert flight.do("b", lambda: 2) == 2
        stats = flight.stats()
        assert stats.leaders == 2
        assert stats.followers == 0

    def test_results_are_not_cached(self):
        flight = SingleFlight()
        flight.do("k", lambda: 1)
        assert flight.do("k", lambda: 2) == 2, (
            "single-flight deduplicates concurrent work only; sequential "
            "calls each run (caching is the session LRU's job)"
        )

    def test_leader_failure_shared_then_forgotten(self):
        flight = SingleFlight()
        boom = ValueError("boom")
        started = threading.Event()
        release = threading.Event()

        def fail():
            started.set()
            release.wait(5)
            raise boom

        follower_error = []

        def follower():
            started.wait(5)
            try:
                flight.do("k", fail)
            except ValueError as error:
                follower_error.append(error)

        thread = threading.Thread(target=follower)
        leader_error = []

        def leader():
            try:
                flight.do("k", fail)
            except ValueError as error:
                leader_error.append(error)

        lead = threading.Thread(target=leader)
        lead.start()
        thread.start()
        while flight.stats().followers < 1 and thread.is_alive():
            pass
        release.set()
        lead.join(10)
        thread.join(10)
        assert leader_error == [boom]
        assert follower_error == [boom], "the follower saw the same failure"
        # Failures are never remembered: the next call is a fresh leader.
        assert flight.do("k", lambda: 42) == 42
